//! Single-flight deduplication for expensive ordering computations.
//!
//! When several callers ask for the same permutation at once — the serve
//! daemon with one identical request per connection is the motivating
//! case — computing it once and sharing the result beats racing N
//! redundant Gorder runs for the same [`CacheKey`](crate::CacheKey)
//! identity. [`SingleFlight::run`] elects the first caller per key as
//! the **leader** (it runs the closure); every concurrent caller for the
//! same key becomes a **follower** and blocks until the leader finishes,
//! then receives a clone of the leader's result tagged as shared.
//!
//! The flight table holds no entry once a flight lands, so a *later*
//! caller (after the leader finished) starts a fresh flight — persistent
//! memoisation stays the job of the on-disk
//! [`OrderCache`](crate::OrderCache); this layer only collapses
//! *concurrent* duplicates.
//!
//! Panic safety: if the leader's closure panics, the flight is marked
//! poisoned and every follower wakes up with
//! [`FlightResult::LeaderPanicked`] instead of hanging forever; the
//! panic itself propagates to the leader's caller unchanged.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// What a [`SingleFlight::run`] call produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightResult<T> {
    /// This caller was the leader: it ran the closure itself.
    Led(T),
    /// This caller joined an in-progress flight and shares the leader's
    /// result.
    Shared(T),
    /// The leader panicked; the follower gets no value. (The leader's
    /// own caller sees the panic, not this.)
    LeaderPanicked,
}

impl<T> FlightResult<T> {
    /// The carried value, if the flight produced one.
    pub fn value(self) -> Option<T> {
        match self {
            FlightResult::Led(v) | FlightResult::Shared(v) => Some(v),
            FlightResult::LeaderPanicked => None,
        }
    }

    /// True when this caller reused another caller's in-flight work.
    pub fn was_shared(&self) -> bool {
        matches!(self, FlightResult::Shared(_))
    }
}

/// One in-progress flight: followers wait on the condvar until `done`.
struct Flight<T> {
    state: Mutex<FlightState<T>>,
    cv: Condvar,
}

enum FlightState<T> {
    Running,
    Done(T),
    Poisoned,
}

/// Removes the flight from the table and marks it poisoned if the
/// leader's closure unwound without landing a result — this is what
/// keeps followers from waiting forever on a panicked leader.
struct LeaderGuard<'a, T: Clone> {
    sf: &'a SingleFlight<T>,
    key: String,
    flight: Arc<Flight<T>>,
    landed: bool,
}

impl<T: Clone> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        self.sf
            .flights
            .lock()
            .expect("flight table lock")
            .remove(&self.key);
        if !self.landed {
            let mut st = self.flight.state.lock().expect("flight lock");
            *st = FlightState::Poisoned;
            self.flight.cv.notify_all();
        }
    }
}

/// Collapses concurrent calls that share a key into one execution.
/// Cheap to share behind an `Arc`; the table is one mutex-guarded map
/// keyed by the canonical identity string.
pub struct SingleFlight<T: Clone> {
    flights: Mutex<HashMap<String, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> SingleFlight<T> {
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `f` under single-flight semantics for `key`. Exactly one
    /// concurrent caller per key executes `f`; the rest block and share
    /// its result. Distinct keys never contend beyond the table lock.
    pub fn run(&self, key: &str, f: impl FnOnce() -> T) -> FlightResult<T> {
        // Decide leader vs follower under the table lock, then release it
        // before any waiting or computing (LeaderGuard::drop re-locks it).
        let (flight, is_leader) = {
            let mut table = self.flights.lock().expect("flight table lock");
            if let Some(existing) = table.get(key) {
                (Arc::clone(existing), false)
            } else {
                let flight = Arc::new(Flight {
                    state: Mutex::new(FlightState::Running),
                    cv: Condvar::new(),
                });
                table.insert(key.to_string(), Arc::clone(&flight));
                (flight, true)
            }
        };

        if !is_leader {
            // Follower: wait for the leader to land or poison the flight.
            let mut st = flight.state.lock().expect("flight lock");
            loop {
                match &*st {
                    FlightState::Running => st = flight.cv.wait(st).expect("flight wait"),
                    FlightState::Done(v) => return FlightResult::Shared(v.clone()),
                    FlightState::Poisoned => return FlightResult::LeaderPanicked,
                }
            }
        }

        let mut guard = LeaderGuard {
            sf: self,
            key: key.to_string(),
            flight,
            landed: false,
        };
        let value = f(); // may unwind; guard poisons the flight
        {
            let mut st = guard.flight.state.lock().expect("flight lock");
            *st = FlightState::Done(value.clone());
            guard.flight.cv.notify_all();
        }
        guard.landed = true;
        FlightResult::Led(value)
    }

    /// Number of flights currently in progress (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flight table lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Barrier;

    #[test]
    fn solo_caller_leads() {
        let sf = SingleFlight::new();
        let r = sf.run("k", || 42);
        assert_eq!(r, FlightResult::Led(42));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn sequential_calls_each_lead() {
        let sf = SingleFlight::new();
        assert_eq!(sf.run("k", || 1), FlightResult::Led(1));
        // The first flight landed; a later call starts fresh (no stale
        // memoisation — that is the on-disk cache's job).
        assert_eq!(sf.run("k", || 2), FlightResult::Led(2));
    }

    #[test]
    fn concurrent_same_key_runs_once() {
        const CALLERS: usize = 8;
        let sf = Arc::new(SingleFlight::new());
        let runs = Arc::new(AtomicU32::new(0));
        let barrier = Arc::new(Barrier::new(CALLERS));
        let results: Vec<FlightResult<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CALLERS)
                .map(|_| {
                    let (sf, runs, barrier) = (sf.clone(), runs.clone(), barrier.clone());
                    s.spawn(move || {
                        barrier.wait();
                        sf.run("k", || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that the
                            // other callers join as followers.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            7u32
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let leaders = results
            .iter()
            .filter(|r| matches!(r, FlightResult::Led(_)))
            .count();
        assert!(leaders >= 1, "someone must lead");
        assert_eq!(
            leaders,
            runs.load(Ordering::SeqCst) as usize,
            "closure ran once per leader"
        );
        for r in results {
            assert_eq!(r.value(), Some(7), "every caller got the value");
        }
        assert_eq!(sf.in_flight(), 0, "table drained");
    }

    #[test]
    fn distinct_keys_do_not_share() {
        let sf = SingleFlight::new();
        assert_eq!(sf.run("a", || 1).value(), Some(1));
        assert_eq!(sf.run("b", || 2).value(), Some(2));
    }

    #[test]
    fn leader_panic_wakes_followers() {
        let sf = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|s| {
            let leader = {
                let (sf, barrier) = (sf.clone(), barrier.clone());
                s.spawn(move || {
                    let sf = std::panic::AssertUnwindSafe(&sf);
                    std::panic::catch_unwind(|| {
                        sf.run("k", || {
                            barrier.wait();
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            panic!("leader died");
                        })
                    })
                })
            };
            let follower = {
                let (sf, barrier) = (sf.clone(), barrier.clone());
                s.spawn(move || {
                    barrier.wait();
                    sf.run("k", || 9u32)
                })
            };
            assert!(leader.join().unwrap().is_err(), "leader saw its panic");
            let f = follower.join().unwrap();
            // The follower either joined the doomed flight (and was woken
            // by poisoning) or arrived after it was torn down and led its
            // own flight — both are live outcomes; a hang is the bug.
            assert!(matches!(
                f,
                FlightResult::LeaderPanicked | FlightResult::Led(9)
            ));
        });
        assert_eq!(sf.in_flight(), 0);
    }
}
