//! ChDFS — children-first depth-first search ordering.
//!
//! The replication interprets the paper's "children-depth first search" as
//! a plain DFS discovery order: children are selected in the original
//! id order, restarts cover disconnected parts. Because this is the *same
//! traversal* the DFS benchmark algorithm performs (from the same
//! max-degree start node the harness uses), a ChDFS-ordered graph lets the
//! DFS algorithm touch nodes in exactly ascending id order — which is why
//! ChDFS wins the DFS row of Figure 5 outright.

use crate::OrderingAlgorithm;
use gorder_graph::{Graph, NodeId, Permutation};

/// DFS discovery-order placement.
pub struct ChDfs;

impl OrderingAlgorithm for ChDfs {
    fn name(&self) -> &'static str {
        "ChDFS"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.n();
        if n == 0 {
            return Permutation::identity(0);
        }
        let mut seen = vec![false; n as usize];
        let mut placement: Vec<NodeId> = Vec::with_capacity(n as usize);
        let mut stack: Vec<(NodeId, u32)> = Vec::new();
        let start = g.max_degree_node().expect("non-empty graph");
        for s in std::iter::once(start).chain(g.nodes()) {
            if seen[s as usize] {
                continue;
            }
            seen[s as usize] = true;
            placement.push(s);
            stack.push((s, 0));
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                let ns = g.out_neighbors(u);
                let mut advanced = false;
                while (*next as usize) < ns.len() {
                    let v = ns[*next as usize];
                    *next += 1;
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        placement.push(v);
                        stack.push((v, 0));
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    stack.pop();
                }
            }
        }
        Permutation::from_placement(&placement).expect("DFS covers every node once")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_order_on_tree() {
        // max-degree node is 0 (degree 2): DFS visits 0,1,3,2
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3)]);
        let perm = ChDfs.compute(&g);
        assert_eq!(perm.placement(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn covers_disconnected() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)]);
        let perm = ChDfs.compute(&g);
        assert_eq!(perm.len(), 5);
        crate::assert_valid_for(&perm, &g);
    }

    #[test]
    fn tree_edges_have_adjacent_ids_on_paths() {
        // a pure out-path: placement must equal the path order
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let perm = ChDfs.compute(&g);
        // interior node 1 has degree 2 (max, smallest id); the DFS runs to
        // the end of the path, then a restart picks up node 0
        assert_eq!(perm.placement(), vec![1, 2, 3, 4, 5, 0]);
    }

    #[test]
    fn deep_graph_no_stack_overflow() {
        let n = 100_000u32;
        let edges: Vec<(NodeId, NodeId)> = (0..n - 1).map(|u| (u, u + 1)).collect();
        let g = Graph::from_edges(n, &edges);
        let perm = ChDfs.compute(&g);
        assert_eq!(perm.len(), n);
    }

    #[test]
    fn empty() {
        assert_eq!(ChDfs.compute(&Graph::empty(0)).len(), 0);
    }
}
