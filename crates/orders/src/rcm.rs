//! RCM — Reverse Cuthill–McKee.
//!
//! Cuthill–McKee (1969) reduces the *bandwidth* of a sparse matrix:
//! a BFS over the symmetrised graph in which (a) each component is rooted
//! at a pseudo-peripheral node, and (b) each node's children are enqueued
//! in ascending degree order. Reversing the resulting sequence (George's
//! observation) further improves fill-in; for our purposes it is simply
//! the variant the paper benchmarks.
//!
//! Roots come from the George–Liu pseudo-peripheral finder: start at a
//! minimum-degree node, BFS, hop to a minimum-degree node of the deepest
//! level, and repeat while the eccentricity keeps growing — the standard
//! way to start CM near one end of the graph's longest "axis".
//!
//! The replication finds RCM to be Gorder's strongest challenger — best
//! on BFS, SP and Diameter — because a bandwidth-reducing order makes
//! every frontier's neighbourhood compact in memory.

use crate::undirected;
use crate::OrderingAlgorithm;
use gorder_graph::{Graph, NodeId, Permutation};

/// Reverse Cuthill–McKee ordering over the symmetrised view.
pub struct Rcm;

/// Shared state for the CM traversals.
struct Cm<'a> {
    g: &'a Graph,
    sdeg: &'a [u32],
}

impl<'a> Cm<'a> {
    /// CM-style BFS from `root` over nodes not yet claimed in `seen`
    /// (claims them); children enqueued in ascending (degree, id) order.
    fn traverse(&self, root: NodeId, seen: &mut [bool]) -> Vec<NodeId> {
        let mut order = Vec::new();
        seen[root as usize] = true;
        order.push(root);
        let mut head = 0;
        let mut children: Vec<NodeId> = Vec::new();
        while head < order.len() {
            let u = order[head];
            head += 1;
            children.clear();
            for v in undirected::neighbors(self.g, u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    children.push(v);
                }
            }
            children.sort_by_key(|&v| (self.sdeg[v as usize], v));
            order.extend_from_slice(&children);
        }
        order
    }

    /// One level-structure probe: BFS from `root`, returning the
    /// minimum-(degree, id) node of the deepest level and the
    /// eccentricity of `root` within its component.
    fn deepest_level_min(&self, root: NodeId) -> (NodeId, u32) {
        let n = self.g.n() as usize;
        let mut dist = vec![u32::MAX; n];
        let mut queue = vec![root];
        dist[root as usize] = 0;
        let mut head = 0;
        let mut ecc = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            ecc = ecc.max(du);
            for v in undirected::neighbors(self.g, u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push(v);
                }
            }
        }
        let node = queue
            .into_iter()
            .filter(|&u| dist[u as usize] == ecc)
            .min_by_key(|&u| (self.sdeg[u as usize], u))
            .unwrap_or(root);
        (node, ecc)
    }

    /// George–Liu pseudo-peripheral node search starting from `start`.
    fn pseudo_peripheral(&self, start: NodeId) -> NodeId {
        let mut root = start;
        let (mut candidate, mut best_ecc) = self.deepest_level_min(root);
        loop {
            let (next, ecc) = self.deepest_level_min(candidate);
            if ecc > best_ecc {
                root = candidate;
                candidate = next;
                best_ecc = ecc;
            } else {
                // candidate is at least as eccentric as root: prefer it
                return if ecc == best_ecc { candidate } else { root };
            }
        }
    }
}

impl OrderingAlgorithm for Rcm {
    fn name(&self) -> &'static str {
        "RCM"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.n();
        if n == 0 {
            return Permutation::identity(0);
        }
        let sdeg: Vec<u32> = g.nodes().map(|u| undirected::simple_degree(g, u)).collect();
        let cm = Cm { g, sdeg: &sdeg };
        // component seeds in (degree, id) order
        let mut seeds: Vec<NodeId> = g.nodes().collect();
        seeds.sort_by_key(|&u| (sdeg[u as usize], u));

        let mut seen = vec![false; n as usize];
        let mut order: Vec<NodeId> = Vec::with_capacity(n as usize);
        for &seed in &seeds {
            if seen[seed as usize] {
                continue;
            }
            let root = cm.pseudo_peripheral(seed);
            order.extend(cm.traverse(root, &mut seen));
        }
        order.reverse();
        Permutation::from_placement(&order).expect("CM traversal covers every node once")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_core::score::bandwidth_of;
    use gorder_graph::gen::{preferential_attachment, PrefAttachConfig};
    use gorder_graph::Permutation as P;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_graph_stays_banded() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let perm = Rcm.compute(&g);
        assert_eq!(
            bandwidth_of(&g, &perm),
            1,
            "RCM must keep a path's bandwidth minimal"
        );
    }

    #[test]
    fn pseudo_peripheral_finds_path_end() {
        // a path with scrambled labels: 3—0—5—1—6—2—4; starting from the
        // interior, George–Liu must land on an endpoint (3 or 4)
        let g = Graph::from_edges(7, &[(3, 0), (0, 5), (5, 1), (1, 6), (6, 2), (2, 4)]);
        let sdeg: Vec<u32> = g
            .nodes()
            .map(|u| undirected::simple_degree(&g, u))
            .collect();
        let cm = Cm { g: &g, sdeg: &sdeg };
        let root = cm.pseudo_peripheral(5);
        assert!(
            root == 3 || root == 4,
            "pseudo-peripheral of a path must be an endpoint, got {root}"
        );
    }

    #[test]
    fn reduces_bandwidth_vs_random() {
        let g = preferential_attachment(PrefAttachConfig {
            n: 400,
            out_degree: 4,
            reciprocity: 0.3,
            uniform_mix: 0.3,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 12,
        });
        let rcm_bw = bandwidth_of(&g, &Rcm.compute(&g));
        let rnd_bw = bandwidth_of(&g, &P::random(g.n(), &mut StdRng::seed_from_u64(1)));
        assert!(
            rcm_bw < rnd_bw,
            "RCM bandwidth {rcm_bw} should beat random {rnd_bw}"
        );
    }

    #[test]
    fn grid_bandwidth_near_width() {
        // a 4×8 grid (undirected): optimal bandwidth is the short side, 4;
        // CM with pseudo-peripheral roots should get close
        let (w, h) = (4u32, 8u32);
        let idx = |x: u32, y: u32| y * w + x;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        let g = Graph::from_edges(w * h, &edges);
        let bw = bandwidth_of(&g, &Rcm.compute(&g));
        assert!(
            bw <= 2 * w,
            "grid bandwidth {bw} should be near the width {w}"
        );
    }

    #[test]
    fn covers_disconnected() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        let perm = Rcm.compute(&g);
        crate::assert_valid_for(&perm, &g);
    }

    #[test]
    fn uses_undirected_view() {
        // only in-edges at node 0: still reachable in the symmetrised BFS
        let g = Graph::from_edges(3, &[(1, 0), (2, 0)]);
        let perm = Rcm.compute(&g);
        crate::assert_valid_for(&perm, &g);
        assert_eq!(bandwidth_of(&g, &perm), 1);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Rcm.compute(&Graph::empty(0)).len(), 0);
        assert_eq!(Rcm.compute(&Graph::empty(1)).len(), 1);
    }
}
