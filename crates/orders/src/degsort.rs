//! InDegSort — descending in-degree sort.
//!
//! "Nodes are sorted in descending order of in-going degree" (replication
//! §2.3, following the original paper's DegSort). The intuition: hubs are
//! accessed constantly by pull-style algorithms (PageRank reads every
//! in-neighbour's rank), so packing high-in-degree nodes together keeps
//! the hot part of every attribute array dense in cache. Ties break by
//! ascending id (stable sort), preserving any original-order locality
//! among equals.

use crate::OrderingAlgorithm;
use gorder_graph::{Graph, NodeId, Permutation};

/// Descending in-degree ordering.
pub struct InDegSort;

impl OrderingAlgorithm for InDegSort {
    fn name(&self) -> &'static str {
        "InDegSort"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let mut placement: Vec<NodeId> = g.nodes().collect();
        placement.sort_by_key(|&u| std::cmp::Reverse(g.in_degree(u)));
        Permutation::from_placement(&placement).expect("sorted node list is a permutation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hubs_first() {
        // in-degrees: 0 ← {1,2,3} = 3; 1 ← {0} = 1; 2, 3 ← {} = 0
        let g = Graph::from_edges(4, &[(1, 0), (2, 0), (3, 0), (0, 1)]);
        let perm = InDegSort.compute(&g);
        assert_eq!(perm.apply(0), 0);
        assert_eq!(perm.apply(1), 1);
        // ties 2, 3 keep ascending id order (stable)
        assert_eq!(perm.apply(2), 2);
        assert_eq!(perm.apply(3), 3);
    }

    #[test]
    fn stable_on_regular_graph() {
        // directed cycle: all in-degrees equal → identity
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(InDegSort.compute(&g).is_identity());
    }

    #[test]
    fn placement_is_monotone_in_indegree() {
        let g = Graph::from_edges(6, &[(0, 5), (1, 5), (2, 5), (3, 4), (0, 4), (1, 3)]);
        let perm = InDegSort.compute(&g);
        let placement = perm.placement();
        for pair in placement.windows(2) {
            assert!(g.in_degree(pair[0]) >= g.in_degree(pair[1]));
        }
    }

    #[test]
    fn empty() {
        assert_eq!(InDegSort.compute(&Graph::empty(0)).len(), 0);
    }
}
