//! Content-addressed on-disk permutation cache.
//!
//! Orderings are pure functions of (graph content, ordering name,
//! parameters, seed), and on the sweep grids the same ordering of the
//! same graph is recomputed for every algorithm column and every rerun.
//! This cache memoises them on disk:
//!
//! * the **key** is the FNV-1a digest of the graph's CSR content plus
//!   the ordering's name, canonical parameter string, and seed —
//!   rendered as one canonical identity string
//!   (`graph=<digest>,order=<name>,params=<params>,seed=<seed>`) whose
//!   own FNV hash names the cache file (content addressing: a mutated
//!   graph or changed window/seed lands in a different file);
//! * **writes** are atomic: temp file in the same directory, `fsync`,
//!   rename — a crash mid-store leaves either the old entry or a
//!   `.tmp` orphan, never a torn entry;
//! * **reads** are paranoid: magic, version, node count, the full
//!   identity string, and a trailing FNV checksum are all verified, and
//!   the permutation is re-validated as a bijection
//!   ([`Permutation::try_new`]) before anything trusts it. Any mismatch
//!   is a warn-and-miss, never an error — the caller just recomputes.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use gorder_graph::{Graph, NodeId, Permutation};

use crate::OrderingAlgorithm;

const MAGIC: &[u8; 4] = b"GOPC";
const FORMAT_VERSION: u32 = 1;

/// Incremental FNV-1a (same constants as `gorder_obs`'s `config_hash`,
/// so digests and config hashes live in one id space).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

/// FNV-1a digest of a graph's CSR content: node count, out-offsets,
/// out-neighbours (all canonicalised little-endian). Two graphs digest
/// equal iff they have identical adjacency under identical labels —
/// exactly the input an ordering sees.
pub fn graph_digest(g: &Graph) -> u64 {
    let (offsets, neighbors) = g.out_csr();
    let mut h = Fnv::new();
    h.update(&g.n().to_le_bytes());
    for o in offsets {
        h.update(&o.to_le_bytes());
    }
    for v in neighbors {
        h.update(&v.to_le_bytes());
    }
    h.finish()
}

/// Everything that identifies a cached permutation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`graph_digest`] of the graph the ordering ran on.
    pub graph_digest: u64,
    /// Ordering name, e.g. `"Gorder"`.
    pub ordering: String,
    /// Canonical parameter string ([`OrderingAlgorithm::params`]).
    pub params: String,
    /// Seed the ordering was constructed with.
    pub seed: u64,
}

impl CacheKey {
    /// Key for running `o` on `g` with `seed`.
    pub fn for_ordering(g: &Graph, o: &dyn OrderingAlgorithm, seed: u64) -> Self {
        CacheKey {
            graph_digest: graph_digest(g),
            ordering: o.name().to_string(),
            params: o.params(),
            seed,
        }
    }

    /// The canonical identity string — also what the `order` trace
    /// record carries, so traces and cache entries join on it.
    pub fn identity(&self) -> String {
        format!(
            "graph={:016x},order={},params={},seed={}",
            self.graph_digest, self.ordering, self.params, self.seed
        )
    }

    /// Cache file name: FNV of the identity string, hex, `.perm`.
    pub fn file_name(&self) -> String {
        format!("{:016x}.perm", fnv1a(self.identity().as_bytes()))
    }
}

/// The on-disk cache: one directory, one file per (graph, ordering,
/// params, seed) tuple.
#[derive(Debug, Clone)]
pub struct OrderCache {
    dir: PathBuf,
}

impl OrderCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(OrderCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Loads the permutation for `key`, expecting `n` nodes. Returns
    /// `None` (after a stderr warning for anything other than a plain
    /// absent file) if the entry is missing, torn, corrupt, for a
    /// different identity, or not a bijection.
    pub fn load(&self, key: &CacheKey, n: u32) -> Option<Permutation> {
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(e) => {
                eprintln!(
                    "warning: order cache read failed for {}: {e}",
                    path.display()
                );
                return None;
            }
        };
        match decode(&bytes, key, n) {
            Ok(perm) => Some(perm),
            Err(why) => {
                eprintln!(
                    "warning: ignoring corrupt order cache entry {} ({why}); recomputing",
                    path.display()
                );
                None
            }
        }
    }

    /// Stores `perm` under `key`, atomically (temp + fsync + rename).
    ///
    /// Safe under concurrent writers of the same key: each writer gets a
    /// unique temp name (pid + a process-wide counter), so two racing
    /// stores never interleave bytes in one temp file — the loser's
    /// rename simply replaces the winner's identical entry.
    pub fn store(&self, key: &CacheKey, perm: &Permutation) -> io::Result<PathBuf> {
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = self.path_for(key);
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            key.file_name(),
            std::process::id(),
            STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        let bytes = encode(key, perm);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Entry layout (all integers little-endian):
/// `MAGIC | version u32 | identity_len u32 | identity bytes | n u32 |
///  n × u32 map | fnv u64 of everything before it`.
fn encode(key: &CacheKey, perm: &Permutation) -> Vec<u8> {
    let identity = key.identity();
    let n = perm.len();
    let mut out = Vec::with_capacity(4 + 4 + 4 + identity.len() + 4 + 4 * n as usize + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(identity.len() as u32).to_le_bytes());
    out.extend_from_slice(identity.as_bytes());
    out.extend_from_slice(&n.to_le_bytes());
    for u in 0..n {
        out.extend_from_slice(&perm.apply(u).to_le_bytes());
    }
    let check = fnv1a(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

fn decode(bytes: &[u8], key: &CacheKey, n: u32) -> Result<Permutation, String> {
    if bytes.len() < 8 + 8 {
        return Err("truncated header".to_string());
    }
    let (payload, check_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(check_bytes.try_into().expect("8 bytes"));
    if fnv1a(payload) != stored {
        return Err("checksum mismatch".to_string());
    }
    let mut r = payload;
    let mut take = |k: usize| -> Result<&[u8], String> {
        if r.len() < k {
            return Err("truncated payload".to_string());
        }
        let (head, rest) = r.split_at(k);
        r = rest;
        Ok(head)
    };
    if take(4)? != MAGIC {
        return Err("bad magic".to_string());
    }
    let version = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(format!("unsupported format version {version}"));
    }
    let id_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let identity = std::str::from_utf8(take(id_len)?).map_err(|_| "bad identity".to_string())?;
    if identity != key.identity() {
        return Err(format!("identity mismatch: entry is for {identity}"));
    }
    let stored_n = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
    if stored_n != n {
        return Err(format!(
            "node count mismatch: entry has {stored_n}, graph has {n}"
        ));
    }
    let map_bytes = take(4 * n as usize)?;
    if !r.is_empty() {
        return Err("trailing bytes".to_string());
    }
    let map: Vec<NodeId> = map_bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Permutation::try_new(map).map_err(|e| format!("not a bijection: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gorder_impl::GorderOrdering;
    use gorder_graph::gen::copying_model;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gorder-order-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_key() -> CacheKey {
        CacheKey {
            graph_digest: 0x1234,
            ordering: "Gorder".into(),
            params: "w=5".into(),
            seed: 42,
        }
    }

    #[test]
    fn digest_depends_on_content() {
        let a = copying_model(100, 4, 0.5, 1);
        let b = copying_model(100, 4, 0.5, 2);
        assert_eq!(graph_digest(&a), graph_digest(&a));
        assert_ne!(graph_digest(&a), graph_digest(&b));
        assert_ne!(
            graph_digest(&Graph::empty(3)),
            graph_digest(&Graph::empty(4))
        );
    }

    #[test]
    fn round_trip_returns_exact_permutation() {
        let dir = tmpdir("roundtrip");
        let cache = OrderCache::new(&dir).unwrap();
        let g = copying_model(120, 4, 0.6, 3);
        let o = GorderOrdering::with_defaults();
        let key = CacheKey::for_ordering(&g, &o, 42);
        assert!(cache.load(&key, g.n()).is_none(), "cold cache misses");
        let perm = o.compute(&g);
        cache.store(&key, &perm).unwrap();
        let loaded = cache.load(&key, g.n()).expect("warm cache hits");
        assert_eq!(loaded.as_slice(), perm.as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_key_components_land_in_different_files() {
        let base = demo_key();
        let mut graph2 = base.clone();
        graph2.graph_digest ^= 1;
        let mut params2 = base.clone();
        params2.params = "w=7".into();
        let mut seed2 = base.clone();
        seed2.seed = 43;
        for other in [&graph2, &params2, &seed2] {
            assert_ne!(base.file_name(), other.file_name());
            assert_ne!(base.identity(), other.identity());
        }
    }

    #[test]
    fn corrupt_and_truncated_entries_are_rejected() {
        let dir = tmpdir("corrupt");
        let cache = OrderCache::new(&dir).unwrap();
        let g = copying_model(80, 4, 0.6, 5);
        let o = GorderOrdering::with_defaults();
        let key = CacheKey::for_ordering(&g, &o, 1);
        let perm = o.compute(&g);
        let path = cache.store(&key, &perm).unwrap();

        // Truncation: drop the last 10 bytes.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 10]).unwrap();
        assert!(cache.load(&key, g.n()).is_none());

        // Bit flip inside the map.
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        fs::write(&path, &flipped).unwrap();
        assert!(cache.load(&key, g.n()).is_none());

        // Intact bytes still load.
        fs::write(&path, &full).unwrap();
        assert!(cache.load(&key, g.n()).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_node_count_is_a_miss() {
        let dir = tmpdir("ncount");
        let cache = OrderCache::new(&dir).unwrap();
        let g = copying_model(60, 4, 0.6, 7);
        let o = GorderOrdering::with_defaults();
        let key = CacheKey::for_ordering(&g, &o, 1);
        cache.store(&key, &o.compute(&g)).unwrap();
        assert!(cache.load(&key, g.n() + 1).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
