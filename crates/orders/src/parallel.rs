//! Partitioned parallel Gorder — the discussion's "a parallel version of
//! Gorder could reduce this problem [the ordering's cost]".
//!
//! The greedy is inherently sequential (each placement depends on the
//! window), so the classic parallelisation is **partition-and-conquer**:
//!
//! 1. split the node range into contiguous chunks with the engine's
//!    degree-balanced partitioner ([`partition_rows`]) — the same ranges
//!    the parallel kernels sweep, so chunks carry comparable work, not
//!    just comparable node counts;
//! 2. run the full windowed greedy *independently* on each chunk's
//!    induced subgraph, on the engine's scoped pool ([`run_tasks`]);
//! 3. concatenate the per-chunk placements in chunk order.
//!
//! Edges crossing chunks are invisible to the per-chunk greedies, so the
//! result trades a little `F(π)` for near-linear scaling of ordering
//! time; the `parallel_gorder` bench measures both sides of the trade.
//! Because the output *depends on the partition count*, this is an
//! explicit opt-in algorithm, not an [`ExecPlan`] behaviour — plans
//! never change results (see [`crate::OrderingAlgorithm::compute_plan`]).

use gorder_core::budget::{Budget, DegradeReason, ExecOutcome};
use gorder_core::gorder::GorderStats;
use gorder_core::Gorder;
use gorder_engine::parallel::run_tasks;
use gorder_engine::partition::partition_rows;
use gorder_engine::ExecPlan;
use gorder_graph::subgraph::induced_range;
use gorder_graph::{Graph, NodeId, Permutation};

use crate::runner::OrderStats;
use crate::OrderingAlgorithm;

/// Partition-parallel Gorder.
#[derive(Debug, Clone)]
pub struct ParallelGorder {
    inner: Gorder,
    partitions: u32,
}

impl ParallelGorder {
    /// Parallel Gorder with the given sequential configuration and
    /// partition count (≥ 1; 1 degenerates to plain sequential Gorder on
    /// one induced copy).
    pub fn new(inner: Gorder, partitions: u32) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        ParallelGorder { inner, partitions }
    }

    /// Paper-default Gorder split over `partitions` chunks.
    pub fn with_defaults(partitions: u32) -> Self {
        ParallelGorder::new(Gorder::with_defaults(), partitions)
    }

    /// The configured partition count.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// The degree-balanced chunk boundaries this configuration uses on
    /// `g` — exposed so tests (and curious benchmarks) can reconstruct
    /// the per-chunk reference serially.
    pub fn ranges(&self, g: &Graph) -> Vec<(NodeId, NodeId)> {
        partition_rows(g, self.partitions as usize)
            .into_iter()
            .map(|r| (r.start, r.end))
            .collect()
    }

    /// Computes the permutation; chunks run on the engine's scoped pool.
    pub fn compute(&self, g: &Graph) -> Permutation {
        self.compute_with_stats(g).0
    }

    /// [`ParallelGorder::compute`] plus the merged per-chunk heap
    /// counters.
    pub fn compute_with_stats(&self, g: &Graph) -> (Permutation, GorderStats) {
        let mut stats = GorderStats::default();
        if g.n() == 0 {
            return (Permutation::identity(0), stats);
        }
        let tasks: Vec<_> = self
            .ranges(g)
            .into_iter()
            .map(|(lo, hi)| {
                let inner = &self.inner;
                move || {
                    let sub = induced_range(g, lo, hi).graph;
                    let (local, chunk_stats) = inner.compute_with_stats(&sub);
                    // local placement, mapped back to global ids
                    let placed: Vec<NodeId> =
                        local.placement().into_iter().map(|u| u + lo).collect();
                    (placed, chunk_stats)
                }
            })
            .collect();
        let mut placement = Vec::with_capacity(g.n() as usize);
        for ((part, chunk_stats), _busy) in run_tasks(tasks) {
            placement.extend(part);
            stats.merge(&chunk_stats);
        }
        let perm =
            Permutation::from_placement(&placement).expect("chunks partition the node range");
        (perm, stats)
    }

    /// Budgeted variant of [`ParallelGorder::compute`]: every worker runs
    /// the budgeted greedy against the *shared* budget (the deadline and
    /// cancellation flag are global; the node cap applies per worker). If
    /// any chunk degrades, the concatenated result is reported degraded —
    /// it is still a valid permutation, since each chunk falls back to
    /// DFS order over its own unplaced remainder.
    pub fn compute_budgeted(&self, g: &Graph, budget: &Budget) -> ExecOutcome<Permutation> {
        self.compute_budgeted_with_stats(g, budget).0
    }

    /// [`ParallelGorder::compute_budgeted`] plus merged chunk counters.
    pub fn compute_budgeted_with_stats(
        &self,
        g: &Graph,
        budget: &Budget,
    ) -> (ExecOutcome<Permutation>, GorderStats) {
        let mut stats = GorderStats::default();
        if budget.is_unlimited() {
            let (perm, stats) = self.compute_with_stats(g);
            return (ExecOutcome::Completed(perm), stats);
        }
        if g.n() == 0 {
            return (ExecOutcome::Completed(Permutation::identity(0)), stats);
        }
        let tasks: Vec<_> = self
            .ranges(g)
            .into_iter()
            .map(|(lo, hi)| {
                let inner = &self.inner;
                move || {
                    let sub = induced_range(g, lo, hi).graph;
                    let (outcome, chunk_stats) = inner.compute_budgeted_with_stats(&sub, budget);
                    let outcome = outcome.map(|local| {
                        local
                            .placement()
                            .into_iter()
                            .map(|u| u + lo)
                            .collect::<Vec<NodeId>>()
                    });
                    (outcome, chunk_stats)
                }
            })
            .collect();
        let mut placement = Vec::with_capacity(g.n() as usize);
        let mut degraded: Option<DegradeReason> = None;
        for ((outcome, chunk_stats), _busy) in run_tasks(tasks) {
            stats.merge(&chunk_stats);
            match outcome {
                ExecOutcome::Completed(part) => placement.extend(part),
                ExecOutcome::Degraded(part, reason) => {
                    placement.extend(part);
                    degraded.get_or_insert(reason);
                }
                ExecOutcome::TimedOut => return (ExecOutcome::TimedOut, stats),
                ExecOutcome::Failed(e) => return (ExecOutcome::Failed(e), stats),
            }
        }
        let perm =
            Permutation::from_placement(&placement).expect("chunks partition the node range");
        let outcome = match degraded {
            None => ExecOutcome::Completed(perm),
            Some(reason) => ExecOutcome::Degraded(perm, reason),
        };
        (outcome, stats)
    }
}

impl OrderingAlgorithm for ParallelGorder {
    fn name(&self) -> &'static str {
        "ParallelGorder"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        ParallelGorder::compute(self, g)
    }

    fn compute_budgeted(&self, g: &Graph, budget: &Budget) -> ExecOutcome<Permutation> {
        ParallelGorder::compute_budgeted(self, g, budget)
    }

    fn compute_plan(
        &self,
        g: &Graph,
        _plan: ExecPlan,
        budget: &Budget,
        stats: &mut OrderStats,
    ) -> ExecOutcome<Permutation> {
        let (outcome, gs) = self.compute_budgeted_with_stats(g, budget);
        stats.heap_increments = gs.increments;
        stats.heap_decrements = gs.decrements;
        stats.heap_pops = gs.pops;
        stats.hub_skips = gs.hub_skips;
        stats.heap_refreshes = gs.refreshes;
        stats.threads_used = self.partitions.min(g.n()).max(1);
        outcome
    }

    fn params(&self) -> String {
        let mut p = format!("w={},parts={}", self.inner.window_size(), self.partitions);
        if let Some(t) = self.inner.hub_threshold() {
            p.push_str(&format!(",hub={t}"));
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_core::score::f_score_of;
    use gorder_graph::gen::{copying_model, erdos_renyi, web_graph, WebGraphConfig};
    use rand::SeedableRng;

    fn structured() -> Graph {
        copying_model(600, 6, 0.7, 12)
    }

    fn assert_valid(perm: &Permutation, n: u32) {
        let mut seen = vec![false; n as usize];
        for u in 0..n {
            let t = perm.apply(u) as usize;
            assert!(!seen[t]);
            seen[t] = true;
        }
    }

    /// Reference for the partition-and-conquer contract: serial Gorder
    /// per degree-balanced range, concatenated in range order.
    fn per_range_reference(pg: &ParallelGorder, g: &Graph) -> Permutation {
        let mut placement = Vec::with_capacity(g.n() as usize);
        for (lo, hi) in pg.ranges(g) {
            let sub = induced_range(g, lo, hi).graph;
            let local = Gorder::with_defaults().compute(&sub);
            placement.extend(local.placement().into_iter().map(|u| u + lo));
        }
        Permutation::from_placement(&placement).unwrap()
    }

    #[test]
    fn matches_per_range_serial_reference_on_web_er_grid() {
        // The satellite regression: unifying on partition_rows must not
        // change what each chunk computes — the parallel result equals
        // the serial per-range reference, chunk by chunk.
        let web = web_graph(WebGraphConfig {
            n: 300,
            mean_host_size: 12,
            seed: 5,
            ..Default::default()
        });
        let er = erdos_renyi(250, 800, 7);
        let mut grid_edges = Vec::new();
        let side = 16u32;
        for r in 0..side {
            for c in 0..side {
                let u = r * side + c;
                if c + 1 < side {
                    grid_edges.push((u, u + 1));
                    grid_edges.push((u + 1, u));
                }
                if r + 1 < side {
                    grid_edges.push((u, u + side));
                    grid_edges.push((u + side, u));
                }
            }
        }
        let grid = Graph::from_edges(side * side, &grid_edges);
        for g in [&web, &er, &grid] {
            for p in [1, 2, 4, 7] {
                let pg = ParallelGorder::with_defaults(p);
                assert_eq!(
                    pg.compute(g).as_slice(),
                    per_range_reference(&pg, g).as_slice(),
                    "p={p} diverges from the per-range serial reference"
                );
            }
        }
    }

    #[test]
    fn valid_for_various_partition_counts() {
        let g = structured();
        for p in [1, 2, 3, 7, 16] {
            let perm = ParallelGorder::with_defaults(p).compute(&g);
            assert_valid(&perm, g.n());
        }
    }

    #[test]
    fn single_partition_matches_sequential_on_whole_graph() {
        let g = structured();
        let par = ParallelGorder::with_defaults(1).compute(&g);
        let seq = Gorder::with_defaults().compute(&g);
        assert_eq!(par.as_slice(), seq.as_slice());
    }

    #[test]
    fn partitions_confine_nodes_to_their_range_span() {
        let g = structured();
        let pg = ParallelGorder::with_defaults(4);
        let perm = pg.compute(&g);
        for (lo, hi) in pg.ranges(&g) {
            // range [lo, hi)'s placement occupies exactly positions
            // [lo, hi): ranges are contiguous and concatenated in order
            for u in lo..hi {
                let new = perm.apply(u);
                assert!(
                    new >= lo && new < hi,
                    "node {u} of range [{lo},{hi}) landed at {new}"
                );
            }
        }
    }

    #[test]
    fn quality_close_to_sequential_and_far_above_random() {
        let g = structured();
        let w = 5;
        let seq = f_score_of(&g, &Gorder::with_defaults().compute(&g), w) as f64;
        let par = f_score_of(&g, &ParallelGorder::with_defaults(4).compute(&g), w) as f64;
        let rnd = f_score_of(
            &g,
            &Permutation::random(g.n(), &mut rand::rngs::StdRng::seed_from_u64(1)),
            w,
        ) as f64;
        assert!(par > 0.5 * seq, "parallel F {par} vs sequential {seq}");
        assert!(par > 2.0 * rnd, "parallel F {par} vs random {rnd}");
    }

    #[test]
    fn more_partitions_than_nodes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let perm = ParallelGorder::with_defaults(64).compute(&g);
        assert_valid(&perm, 3);
    }

    #[test]
    fn empty_graph() {
        let perm = ParallelGorder::with_defaults(4).compute(&Graph::empty(0));
        assert_eq!(perm.len(), 0);
    }

    #[test]
    fn budgeted_unlimited_matches_plain() {
        let g = structured();
        let pg = ParallelGorder::with_defaults(4);
        let plain = pg.compute(&g);
        let outcome = ParallelGorder::compute_budgeted(&pg, &g, &Budget::unlimited());
        assert_eq!(outcome.value().unwrap().as_slice(), plain.as_slice());
    }

    #[test]
    fn budgeted_cancellation_still_yields_valid_permutation() {
        let g = structured();
        let budget = Budget::unlimited().with_node_cap(u64::MAX);
        budget.cancel();
        match ParallelGorder::compute_budgeted(&ParallelGorder::with_defaults(4), &g, &budget) {
            ExecOutcome::Degraded(perm, reason) => {
                assert_eq!(reason, DegradeReason::Cancelled);
                assert_valid(&perm, g.n());
            }
            other => panic!(
                "cancelled budget must degrade, got {}",
                other.status_label()
            ),
        }
    }

    #[test]
    fn chunk_stats_are_merged() {
        let g = structured();
        let (_, stats) = ParallelGorder::with_defaults(4).compute_with_stats(&g);
        assert!(stats.increments > 0);
        assert!(stats.pops > 0);
        // Each chunk pops every node in the chunk except its seed.
        let parts = ParallelGorder::with_defaults(4).ranges(&g).len() as u64;
        assert_eq!(stats.pops, u64::from(g.n()) - parts);
    }
}
