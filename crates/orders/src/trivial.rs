//! The two trivial baselines: Original (identity) and Random.
//!
//! *Original* keeps the order the dataset shipped in. The paper observes
//! it performs surprisingly well — collection processes (crawls,
//! URL-lexicographic dumps) impart locality. *Random* is the replication's
//! added adversarial baseline: shuffling destroys all locality, making it
//! the consistent worst performer.

use crate::OrderingAlgorithm;
use gorder_graph::{Graph, Permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The identity ordering — "whatever order the dataset came in".
pub struct Original;

impl OrderingAlgorithm for Original {
    fn name(&self) -> &'static str {
        "Original"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        Permutation::identity(g.n())
    }
}

/// A seeded uniform shuffle of the node ids.
pub struct RandomOrder {
    seed: u64,
}

impl RandomOrder {
    /// Random ordering with the given seed (determinism across runs).
    pub fn new(seed: u64) -> Self {
        RandomOrder { seed }
    }
}

impl OrderingAlgorithm for RandomOrder {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        Permutation::random(g.n(), &mut StdRng::seed_from_u64(self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_is_identity() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert!(Original.compute(&g).is_identity());
    }

    #[test]
    fn random_is_seeded() {
        let g = Graph::empty(50);
        let a = RandomOrder::new(4).compute(&g);
        let b = RandomOrder::new(4).compute(&g);
        let c = RandomOrder::new(5).compute(&g);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn random_actually_shuffles() {
        let g = Graph::empty(100);
        assert!(!RandomOrder::new(1).compute(&g).is_identity());
    }
}
