//! MinLA / MinLogA — simulated annealing on arrangement energies.
//!
//! Minimum linear arrangement minimises `Σ_(u,v)∈E |π(u) − π(v)|`;
//! MinLogA minimises `Σ ln |π(u) − π(v)|`. Both exact problems are
//! NP-hard, so the paper (and the replication) anneal: at step `s` out of
//! `S`, two random nodes swap indices; an energy increase `e > 0` is
//! accepted with probability `exp(−e / (k·T))` where the temperature
//! `T(s) = 1 − s/S` falls linearly and `k` is the replication's "standard
//! energy" scale. `k = 0` degenerates to local search (only improving
//! swaps — which the replication found no parameter setting could beat,
//! its Figure 3).
//!
//! Defaults follow the replication: `S = m`, `k = m/n`.

use crate::OrderingAlgorithm;
use gorder_core::budget::{Budget, DegradeReason, ExecOutcome};
use gorder_graph::{Graph, NodeId, Permutation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How often the annealer polls its budget and refreshes the best-so-far
/// snapshot, in swap attempts. Coarser than the node-placement stride of
/// Gorder because one annealing step is much cheaper than one placement.
const ANNEAL_CHECK_STRIDE: u64 = 1024;

/// Temperature schedule for the annealer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cooling {
    /// `T(s) = 1 − s/S` — the replication's schedule (default).
    #[default]
    Linear,
    /// `T(s) = 0.999^⌈s/(S/1000)⌉`-style geometric decay: multiplicative
    /// steps that spend more of the budget at low temperature. The classic
    /// alternative the replication's Figure 3 invites comparing against.
    Geometric,
}

impl Cooling {
    /// Temperature at step `s` of `steps`.
    #[inline]
    pub fn temperature(self, s: u64, steps: u64) -> f64 {
        let frac = s as f64 / steps as f64;
        match self {
            Cooling::Linear => 1.0 - frac,
            Cooling::Geometric => 0.001f64.powf(frac), // 1 → 1e-3 geometrically
        }
    }
}

/// Which arrangement energy the annealer minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnergyModel {
    /// `Σ |π(u) − π(v)|` (MinLA).
    Linear,
    /// `Σ ln |π(u) − π(v)|` (MinLogA).
    Log,
}

impl EnergyModel {
    /// Cost of one edge at id distance `d ≥ 1`.
    #[inline]
    pub fn edge_cost(self, d: u32) -> f64 {
        debug_assert!(d >= 1, "distinct nodes have distinct positions");
        match self {
            EnergyModel::Linear => f64::from(d),
            EnergyModel::Log => f64::from(d).ln(),
        }
    }

    /// Figure-label of the ordering this model produces.
    pub fn ordering_name(self) -> &'static str {
        match self {
            EnergyModel::Linear => "MinLA",
            EnergyModel::Log => "MinLogA",
        }
    }
}

/// Simulated-annealing arrangement optimiser.
#[derive(Debug, Clone)]
pub struct Annealing {
    model: EnergyModel,
    /// Swap attempts; `None` → `m` (replication default).
    steps: Option<u64>,
    /// Standard energy `k`; `None` → `m/n` (replication default); `0` →
    /// pure local search.
    standard_energy: Option<f64>,
    cooling: Cooling,
    seed: u64,
}

impl Annealing {
    /// MinLA with replication defaults.
    pub fn minla(seed: u64) -> Self {
        Annealing {
            model: EnergyModel::Linear,
            steps: None,
            standard_energy: None,
            cooling: Cooling::Linear,
            seed,
        }
    }

    /// MinLogA with replication defaults.
    pub fn minloga(seed: u64) -> Self {
        Annealing {
            model: EnergyModel::Log,
            steps: None,
            standard_energy: None,
            cooling: Cooling::Linear,
            seed,
        }
    }

    /// Fully parameterised constructor (used by the Figure 3 sweep).
    pub fn with_params(model: EnergyModel, steps: u64, standard_energy: f64, seed: u64) -> Self {
        Annealing {
            model,
            steps: Some(steps),
            standard_energy: Some(standard_energy),
            cooling: Cooling::Linear,
            seed,
        }
    }

    /// Switches the temperature schedule (ablation knob).
    pub fn cooling(mut self, cooling: Cooling) -> Self {
        self.cooling = cooling;
        self
    }

    /// Local search (`k = 0`): accept only strictly improving swaps.
    pub fn local_search(model: EnergyModel, steps: u64, seed: u64) -> Self {
        Self::with_params(model, steps, 0.0, seed)
    }

    /// Runs the annealer and also returns the final arrangement energy.
    pub fn compute_with_energy(&self, g: &Graph) -> (Permutation, f64) {
        let (perm, energy, _) = self.anneal(g, &Budget::unlimited());
        (perm, energy)
    }

    /// Anytime variant: runs under `budget` and, if it expires, returns
    /// the **best** arrangement seen at any budget checkpoint rather than
    /// wherever the random walk happened to be (annealing moves uphill on
    /// purpose, so the current state can be much worse than the best).
    /// The degraded energy is therefore never above the starting energy.
    /// With an unlimited budget this is exactly
    /// [`compute_with_energy`](Self::compute_with_energy) — the budget
    /// checks read no randomness, so the RNG stream is identical.
    pub fn compute_budgeted_with_energy(
        &self,
        g: &Graph,
        budget: &Budget,
    ) -> ExecOutcome<(Permutation, f64)> {
        let (perm, energy, stop) = self.anneal(g, budget);
        match stop {
            None => ExecOutcome::Completed((perm, energy)),
            Some(reason) => ExecOutcome::Degraded((perm, energy), reason),
        }
    }

    fn anneal(&self, g: &Graph, budget: &Budget) -> (Permutation, f64, Option<DegradeReason>) {
        let n = g.n();
        let m = g.m();
        if n < 2 {
            return (Permutation::identity(n), 0.0, None);
        }
        let steps = self.steps.unwrap_or(m);
        let k = self.standard_energy.unwrap_or(m as f64 / f64::from(n));
        let unlimited = budget.is_unlimited();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // pos[u] = current index of u; start from the original arrangement.
        let mut pos: Vec<u32> = (0..n).collect();
        let mut energy: f64 = g
            .edges()
            .map(|(u, v)| {
                self.model
                    .edge_cost(pos[u as usize].abs_diff(pos[v as usize]))
            })
            .sum();
        // Best-so-far snapshot, refreshed only at budget checkpoints (an
        // O(n) clone per refresh; checkpoints are ANNEAL_CHECK_STRIDE
        // apart, so the amortised cost is negligible).
        let mut best: Option<(Vec<u32>, f64)> = None;
        let mut stop = if unlimited { None } else { budget.exhausted(0) };

        if stop.is_none() {
            for s in 0..steps {
                let temp = self.cooling.temperature(s, steps);
                let u: NodeId = rng.gen_range(0..n);
                let v: NodeId = rng.gen_range(0..n);
                if u != v {
                    let delta = swap_delta(g, self.model, &pos, u, v);
                    let accept = if delta < 0.0 {
                        true
                    } else if k > 0.0 && temp > 0.0 {
                        let p = (-delta / (k * temp)).exp();
                        rng.gen_bool(p.clamp(0.0, 1.0))
                    } else {
                        false
                    };
                    if accept {
                        pos.swap(u as usize, v as usize);
                        energy += delta;
                    }
                }
                if !unlimited && (s + 1).is_multiple_of(ANNEAL_CHECK_STRIDE) {
                    if best.as_ref().is_none_or(|(_, be)| energy < *be) {
                        best = Some((pos.clone(), energy));
                    }
                    stop = budget.exhausted(s + 1);
                    if stop.is_some() {
                        break;
                    }
                }
            }
        }
        if stop.is_some() {
            // Return whichever of (current, best snapshot, untouched
            // start) has the lowest energy; the start qualifies because
            // `best` is only refreshed at checkpoints.
            let start_energy: f64 = g
                .edges()
                .map(|(u, v)| self.model.edge_cost(u.abs_diff(v)))
                .sum();
            if let Some((bpos, be)) = best {
                if be < energy {
                    pos = bpos;
                    energy = be;
                }
            }
            if start_energy < energy {
                pos = (0..n).collect();
                energy = start_energy;
            }
        }
        let perm = Permutation::try_new(pos).expect("swaps preserve bijectivity");
        (perm, energy, stop)
    }
}

/// Energy change from swapping the indices of `u` and `v`.
///
/// Only edges incident to `u` or `v` change cost. The edge between `u` and
/// `v` themselves (if any) keeps its distance, and any double-counted
/// incident edge contributes the same to both old and new sums, so the
/// difference is exact.
fn swap_delta(g: &Graph, model: EnergyModel, pos: &[u32], u: NodeId, v: NodeId) -> f64 {
    let mapped = |w: NodeId| -> u32 {
        if w == u {
            pos[v as usize]
        } else if w == v {
            pos[u as usize]
        } else {
            pos[w as usize]
        }
    };
    let mut delta = 0.0;
    for &a in &[u, v] {
        for &x in g.out_neighbors(a) {
            delta += model.edge_cost(mapped(a).abs_diff(mapped(x)))
                - model.edge_cost(pos[a as usize].abs_diff(pos[x as usize]));
        }
        for &x in g.in_neighbors(a) {
            delta += model.edge_cost(mapped(x).abs_diff(mapped(a)))
                - model.edge_cost(pos[x as usize].abs_diff(pos[a as usize]));
        }
    }
    delta
}

impl OrderingAlgorithm for Annealing {
    fn name(&self) -> &'static str {
        self.model.ordering_name()
    }

    fn compute(&self, g: &Graph) -> Permutation {
        self.compute_with_energy(g).0
    }

    fn compute_budgeted(&self, g: &Graph, budget: &Budget) -> ExecOutcome<Permutation> {
        self.compute_budgeted_with_energy(g, budget)
            .map(|(perm, _)| perm)
    }

    fn params(&self) -> String {
        let steps = self
            .steps
            .map_or_else(|| "auto".to_string(), |s| s.to_string());
        let k = self
            .standard_energy
            .map_or_else(|| "auto".to_string(), |e| format!("{e}"));
        let cooling = match self.cooling {
            Cooling::Linear => "linear",
            Cooling::Geometric => "geometric",
        };
        format!("steps={steps},k={k},cooling={cooling}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_core::score::{minla_energy_of, minloga_energy_of};
    use gorder_graph::gen::{preferential_attachment, PrefAttachConfig};

    fn test_graph() -> Graph {
        preferential_attachment(PrefAttachConfig {
            n: 300,
            out_degree: 4,
            reciprocity: 0.3,
            uniform_mix: 0.3,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 5,
        })
    }

    #[test]
    fn reported_energy_matches_evaluator() {
        let g = test_graph();
        let annealer = Annealing::with_params(EnergyModel::Linear, 5_000, 1.0, 3);
        let (perm, energy) = annealer.compute_with_energy(&g);
        let reference = minla_energy_of(&g, &perm) as f64;
        assert!(
            (energy - reference).abs() < 1e-6 * reference.max(1.0),
            "incremental {energy} vs reference {reference}"
        );
    }

    #[test]
    fn log_energy_matches_evaluator() {
        let g = test_graph();
        let annealer = Annealing::with_params(EnergyModel::Log, 5_000, 0.5, 4);
        let (perm, energy) = annealer.compute_with_energy(&g);
        let reference = minloga_energy_of(&g, &perm);
        assert!((energy - reference).abs() < 1e-6 * reference.abs().max(1.0));
    }

    #[test]
    fn local_search_never_worsens() {
        let g = test_graph();
        let start = minla_energy_of(&g, &Permutation::identity(g.n())) as f64;
        let (_, energy) =
            Annealing::local_search(EnergyModel::Linear, 20_000, 1).compute_with_energy(&g);
        assert!(
            energy <= start,
            "local search went uphill: {energy} > {start}"
        );
    }

    #[test]
    fn annealing_improves_over_identity() {
        let g = test_graph();
        let start = minla_energy_of(&g, &Permutation::identity(g.n())) as f64;
        let (_, energy) = Annealing::minla(2).compute_with_energy(&g);
        assert!(
            energy < start,
            "annealing failed to improve: {energy} vs {start}"
        );
    }

    #[test]
    fn huge_k_accepts_everything_and_randomises() {
        // With k → ∞ every swap is accepted: the result is a random
        // arrangement whose energy is no better than where it started.
        let g = test_graph();
        let (_, hot) =
            Annealing::with_params(EnergyModel::Linear, 20_000, 1e12, 7).compute_with_energy(&g);
        let (_, cold) =
            Annealing::local_search(EnergyModel::Linear, 20_000, 7).compute_with_energy(&g);
        assert!(
            hot > cold,
            "hot annealing {hot} should stay above local search {cold}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = test_graph();
        let a = Annealing::minla(9).compute(&g);
        let b = Annealing::minla(9).compute(&g);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn geometric_cooling_is_valid_and_cools() {
        assert!(Cooling::Geometric.temperature(0, 100) > 0.9);
        assert!(Cooling::Geometric.temperature(99, 100) < 0.01);
        // geometric spends longer cold than linear at the same step
        assert!(Cooling::Geometric.temperature(50, 100) < Cooling::Linear.temperature(50, 100));
        let g = test_graph();
        let (perm, _) = Annealing::with_params(EnergyModel::Linear, 5_000, 1.0, 3)
            .cooling(Cooling::Geometric)
            .compute_with_energy(&g);
        assert_eq!(perm.len(), g.n());
    }

    #[test]
    fn zero_steps_returns_identity() {
        let g = test_graph();
        let (perm, _) =
            Annealing::with_params(EnergyModel::Linear, 0, 1.0, 1).compute_with_energy(&g);
        assert!(perm.is_identity());
    }

    #[test]
    fn tiny_graphs() {
        for n in 0..3u32 {
            let g = Graph::empty(n);
            let (perm, e) = Annealing::minla(1).compute_with_energy(&g);
            assert_eq!(perm.len(), n);
            assert_eq!(e, 0.0);
        }
    }

    #[test]
    fn budgeted_unlimited_matches_plain() {
        let g = test_graph();
        let annealer = Annealing::minla(5);
        let plain = annealer.compute_with_energy(&g);
        match annealer.compute_budgeted_with_energy(&g, &Budget::unlimited()) {
            ExecOutcome::Completed((perm, energy)) => {
                assert_eq!(perm.as_slice(), plain.0.as_slice());
                assert_eq!(energy, plain.1);
            }
            other => panic!(
                "unlimited budget must complete, got {}",
                other.status_label()
            ),
        }
    }

    #[test]
    fn tiny_deadline_degrades_to_no_worse_than_start() {
        let g = test_graph();
        let start = minla_energy_of(&g, &Permutation::identity(g.n())) as f64;
        // Enough steps that a 0-duration deadline always fires first.
        let annealer = Annealing::with_params(EnergyModel::Linear, 50_000_000, 1.0, 3);
        let budget = Budget::unlimited().with_timeout(std::time::Duration::from_millis(1));
        match annealer.compute_budgeted_with_energy(&g, &budget) {
            ExecOutcome::Degraded((perm, energy), reason) => {
                assert_eq!(reason, DegradeReason::DeadlineExceeded);
                assert_eq!(perm.len(), g.n());
                crate::assert_valid_for(&perm, &g);
                assert!(
                    energy <= start,
                    "anytime annealing returned energy {energy} above start {start}"
                );
                let reference = minla_energy_of(&g, &perm) as f64;
                assert!(
                    (energy - reference).abs() < 1e-6 * reference.max(1.0),
                    "degraded energy {energy} does not match its permutation ({reference})"
                );
            }
            other => panic!(
                "1ms deadline on 50M steps must degrade, got {}",
                other.status_label()
            ),
        }
    }

    #[test]
    fn node_cap_degrades_deterministically() {
        let g = test_graph();
        let annealer = Annealing::with_params(EnergyModel::Linear, 1_000_000, 1.0, 11);
        let budget = Budget::unlimited().with_node_cap(4096);
        let a = annealer.compute_budgeted_with_energy(&g, &budget);
        let b = annealer.compute_budgeted_with_energy(&g, &budget);
        match (&a, &b) {
            (ExecOutcome::Degraded((pa, ea), ra), ExecOutcome::Degraded((pb, eb), rb)) => {
                assert_eq!(ra, rb);
                assert_eq!(*ra, DegradeReason::NodeCapReached);
                assert_eq!(pa.as_slice(), pb.as_slice());
                assert_eq!(ea, eb);
            }
            _ => panic!("4096-step cap must degrade both runs"),
        }
    }

    #[test]
    fn swap_delta_is_exact() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let pos: Vec<u32> = (0..5).collect();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u == v {
                    continue;
                }
                let delta = swap_delta(&g, EnergyModel::Linear, &pos, u, v);
                let mut swapped = pos.clone();
                swapped.swap(u as usize, v as usize);
                let before: f64 = g
                    .edges()
                    .map(|(a, b)| f64::from(pos[a as usize].abs_diff(pos[b as usize])))
                    .sum();
                let after: f64 = g
                    .edges()
                    .map(|(a, b)| f64::from(swapped[a as usize].abs_diff(swapped[b as usize])))
                    .sum();
                assert!(
                    (delta - (after - before)).abs() < 1e-9,
                    "swap ({u}, {v}): delta {delta} vs {}",
                    after - before
                );
            }
        }
    }
}
