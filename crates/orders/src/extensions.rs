//! Extension orderings from the follow-on literature.
//!
//! The paper's discussion (and the replication's, via Balaji & Lucia,
//! *“When is Graph Reordering an Optimization?”*, IISWC 2018) motivates a
//! family of lightweight, skew-aware orderings that try to capture most
//! of Gorder's benefit at a fraction of its cost. Three canonical members
//! are implemented here (on in-degree, like InDegSort — the pull-dominated
//! workloads read hub attributes through in-edges):
//!
//! * [`HubSort`] — only the hubs (in-degree above average) are sorted by
//!   descending degree and packed first; non-hubs keep their original
//!   relative order. Preserves cold-region locality that a full sort
//!   destroys.
//! * [`HubCluster`] — hubs are packed first but *not* sorted (original
//!   relative order within both groups). Even gentler than HubSort.
//! * [`Dbg`] — degree-based grouping (Faldu et al.): nodes fall into
//!   power-of-two degree bands around the average; bands are emitted
//!   hottest-first, original order within each band.
//!
//! None of these is part of the paper's Figure 5 zoo; the `ablation`
//! harness binary compares them against it.

use crate::OrderingAlgorithm;
use gorder_graph::{Graph, NodeId, Permutation};

fn average_in_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        0.0
    } else {
        g.m() as f64 / f64::from(g.n())
    }
}

/// Sort hubs by descending in-degree, keep the tail in original order.
pub struct HubSort;

impl OrderingAlgorithm for HubSort {
    fn name(&self) -> &'static str {
        "HubSort"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let avg = average_in_degree(g);
        let mut hubs: Vec<NodeId> = g
            .nodes()
            .filter(|&u| f64::from(g.in_degree(u)) > avg)
            .collect();
        hubs.sort_by_key(|&u| std::cmp::Reverse(g.in_degree(u)));
        let mut placement = hubs;
        placement.extend(g.nodes().filter(|&u| f64::from(g.in_degree(u)) <= avg));
        Permutation::from_placement(&placement).expect("hub split covers every node once")
    }
}

/// Pack hubs first without sorting; original order within both groups.
pub struct HubCluster;

impl OrderingAlgorithm for HubCluster {
    fn name(&self) -> &'static str {
        "HubCluster"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let avg = average_in_degree(g);
        let mut placement: Vec<NodeId> = g
            .nodes()
            .filter(|&u| f64::from(g.in_degree(u)) > avg)
            .collect();
        placement.extend(g.nodes().filter(|&u| f64::from(g.in_degree(u)) <= avg));
        Permutation::from_placement(&placement).expect("hub split covers every node once")
    }
}

/// Degree-based grouping: power-of-two degree bands, hottest band first,
/// original order within bands.
pub struct Dbg {
    bands: u32,
}

impl Dbg {
    /// DBG with the canonical 8 bands.
    pub fn new() -> Self {
        Dbg { bands: 8 }
    }

    /// DBG with a custom band count (≥ 2).
    pub fn with_bands(bands: u32) -> Self {
        assert!(bands >= 2, "need at least a hot and a cold band");
        Dbg { bands }
    }

    /// Band index of in-degree `d` for average degree `avg`: band 0 is the
    /// hottest (`d ≥ avg·2^(bands−2)`), the last band holds `d < avg/2^…`.
    fn band(&self, d: u32, avg: f64) -> u32 {
        let d = f64::from(d);
        // thresholds: avg·2^(bands-2), …, avg·2^0, avg·2^-1, …
        for b in 0..self.bands - 1 {
            let exp = i32::try_from(self.bands - 2).expect("bands is small")
                - i32::try_from(b).expect("band is small");
            if d >= avg * f64::powi(2.0, exp) {
                return b;
            }
        }
        self.bands - 1
    }
}

impl Default for Dbg {
    fn default() -> Self {
        Dbg::new()
    }
}

impl OrderingAlgorithm for Dbg {
    fn params(&self) -> String {
        format!("bands={}", self.bands)
    }

    fn name(&self) -> &'static str {
        "DBG"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.n();
        if n == 0 {
            return Permutation::identity(0);
        }
        let avg = average_in_degree(g).max(1.0);
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); self.bands as usize];
        for u in g.nodes() {
            groups[self.band(g.in_degree(u), avg) as usize].push(u);
        }
        let mut placement = Vec::with_capacity(n as usize);
        for group in groups {
            placement.extend(group);
        }
        Permutation::from_placement(&placement).expect("bands cover every node once")
    }
}

/// The paper's ten orderings plus the extensions (HubSort, HubCluster,
/// DBG, and the Metis-stand-in recursive bisection).
pub fn extended(seed: u64) -> Vec<Box<dyn OrderingAlgorithm>> {
    let mut all = crate::all(seed);
    all.push(Box::new(HubSort));
    all.push(Box::new(HubCluster));
    all.push(Box::new(Dbg::new()));
    all.push(Box::new(crate::bisection::Bisection::default()));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::gen::{preferential_attachment, PrefAttachConfig};

    fn skewed() -> Graph {
        preferential_attachment(PrefAttachConfig {
            n: 400,
            out_degree: 5,
            reciprocity: 0.3,
            uniform_mix: 0.1,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 17,
        })
    }

    #[test]
    fn hubsort_places_hubs_first_sorted() {
        let g = skewed();
        let placement = HubSort.compute(&g).placement();
        let avg = g.m() as f64 / f64::from(g.n());
        // prefix = hubs in non-increasing degree order
        let hub_count = g
            .nodes()
            .filter(|&u| f64::from(g.in_degree(u)) > avg)
            .count();
        for pair in placement[..hub_count].windows(2) {
            assert!(g.in_degree(pair[0]) >= g.in_degree(pair[1]));
        }
        // suffix = non-hubs in original order
        for pair in placement[hub_count..].windows(2) {
            assert!(pair[0] < pair[1], "tail must keep original order");
        }
    }

    #[test]
    fn hubcluster_preserves_relative_order() {
        let g = skewed();
        let placement = HubCluster.compute(&g).placement();
        let avg = g.m() as f64 / f64::from(g.n());
        let is_hub = |u: NodeId| f64::from(g.in_degree(u)) > avg;
        let hubs: Vec<NodeId> = placement.iter().copied().filter(|&u| is_hub(u)).collect();
        let tail: Vec<NodeId> = placement.iter().copied().filter(|&u| !is_hub(u)).collect();
        assert!(
            hubs.windows(2).all(|w| w[0] < w[1]),
            "hub group keeps id order"
        );
        assert!(tail.windows(2).all(|w| w[0] < w[1]), "tail keeps id order");
        // and hubs all come first
        assert_eq!(&placement[..hubs.len()], &hubs[..]);
    }

    #[test]
    fn dbg_bands_are_monotone() {
        let g = skewed();
        let placement = Dbg::new().compute(&g).placement();
        let avg = g.m() as f64 / f64::from(g.n());
        let dbg = Dbg::new();
        let bands: Vec<u32> = placement
            .iter()
            .map(|&u| dbg.band(g.in_degree(u), avg))
            .collect();
        assert!(
            bands.windows(2).all(|w| w[0] <= w[1]),
            "bands must be emitted in order"
        );
        assert!(
            *bands.last().unwrap() > 0,
            "skewed graph should span multiple bands"
        );
    }

    #[test]
    fn band_thresholds() {
        let dbg = Dbg::with_bands(4);
        let avg = 8.0;
        // thresholds: 32 (=avg·2^2), 16, 8; below 8 → last band
        assert_eq!(dbg.band(40, avg), 0);
        assert_eq!(dbg.band(20, avg), 1);
        assert_eq!(dbg.band(9, avg), 2);
        assert_eq!(dbg.band(3, avg), 3);
    }

    #[test]
    fn all_extensions_are_valid_permutations() {
        for g in [Graph::empty(0), Graph::empty(3), skewed()] {
            for o in [&HubSort as &dyn OrderingAlgorithm, &HubCluster, &Dbg::new()] {
                crate::assert_valid_for(&o.compute(&g), &g);
            }
        }
    }

    #[test]
    fn extended_registry() {
        let names: Vec<&str> = extended(1).iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 14);
        assert!(names.contains(&"HubSort"));
        assert!(names.contains(&"HubCluster"));
        assert!(names.contains(&"DBG"));
        assert!(names.contains(&"Bisect"));
    }
}
