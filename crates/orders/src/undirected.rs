//! Undirected (symmetrised) view helpers.
//!
//! RCM, SlashBurn and LDG are defined on undirected graphs; on the paper's
//! directed datasets they operate on the symmetrised view. These helpers
//! expose that view without materialising a second graph: a node's
//! undirected neighbourhood is the chain of its out- and in-lists (an edge
//! present in both directions therefore appears twice — the *multigraph*
//! view, consistent with `gorder-algos`' k-core degree convention).

use gorder_graph::{Graph, NodeId};

/// Iterates the symmetrised neighbourhood of `u` (out then in; reciprocal
/// edges yield their partner twice).
pub fn neighbors(g: &Graph, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    g.out_neighbors(u)
        .iter()
        .copied()
        .chain(g.in_neighbors(u).iter().copied())
}

/// Multigraph undirected degree: `out_degree + in_degree`.
pub fn degree(g: &Graph, u: NodeId) -> u32 {
    g.degree(u)
}

/// Distinct-neighbour count (simple-graph degree): size of the merged,
/// deduplicated out/in lists. O(deg).
pub fn simple_degree(g: &Graph, u: NodeId) -> u32 {
    let (a, b) = (g.out_neighbors(u), g.in_neighbors(u));
    let (mut i, mut j, mut count) = (0, 0, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
        count += 1;
    }
    count + (a.len() - i) as u32 + (b.len() - j) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_chains_both_directions() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 0)]);
        let ns: Vec<NodeId> = neighbors(&g, 0).collect();
        assert_eq!(ns, vec![1, 2]);
    }

    #[test]
    fn reciprocal_edge_appears_twice() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(neighbors(&g, 0).count(), 2);
        assert_eq!(degree(&g, 0), 2);
        assert_eq!(simple_degree(&g, 0), 1);
    }

    #[test]
    fn simple_degree_merges() {
        // out(0) = {1, 2}, in(0) = {2, 3} → distinct {1, 2, 3}
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 0), (3, 0)]);
        assert_eq!(simple_degree(&g, 0), 3);
        assert_eq!(degree(&g, 0), 4);
    }

    #[test]
    fn isolated() {
        let g = Graph::empty(2);
        assert_eq!(simple_degree(&g, 0), 0);
        assert_eq!(neighbors(&g, 0).count(), 0);
    }
}
