//! Recursive bisection ordering — a stand-in for the paper's Metis row.
//!
//! The original paper also benchmarked a Metis partitioning order but the
//! replication dropped it ("not suitable for large graphs because of its
//! excessive memory consumption"). This module provides the same *kind*
//! of ordering — group nodes by a hierarchical partition — using the
//! classic lightweight alternative to multilevel partitioning: recursive
//! **BFS bisection**. Each component is split by distance from a
//! pseudo-peripheral node (near half vs. far half), recursively, until
//! parts fit a leaf size; the ordering concatenates the leaves.
//!
//! No KL/FM refinement — this is the "levelised nested dissection"
//! baseline, O(m log n) and memory-light, which is precisely the
//! trade-off Metis failed on in the replication.

use crate::undirected;
use crate::OrderingAlgorithm;
use gorder_graph::subgraph::induced;
use gorder_graph::{Graph, NodeId, Permutation};

/// Recursive BFS-bisection ordering.
pub struct Bisection {
    leaf_size: u32,
}

impl Bisection {
    /// Bisect until parts have at most `leaf_size` nodes (≥ 1). The paper
    /// aligned partition granularity with the cache line (LDG's k = 64),
    /// so 64 is the default leaf here too.
    pub fn new(leaf_size: u32) -> Self {
        assert!(leaf_size >= 1, "leaf size must be positive");
        Bisection { leaf_size }
    }
}

impl Default for Bisection {
    fn default() -> Self {
        Bisection::new(64)
    }
}

/// Farthest-node probe: BFS from `start`, returning per-node distances
/// (unreached = MAX) and the farthest reached node.
fn far_probe(g: &Graph, start: NodeId) -> (Vec<u32>, NodeId) {
    let mut dist = vec![u32::MAX; g.n() as usize];
    let mut queue = vec![start];
    dist[start as usize] = 0;
    let mut head = 0;
    let mut far = start;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for v in undirected::neighbors(g, u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                if dist[v as usize] > dist[far as usize] {
                    far = v;
                }
                queue.push(v);
            }
        }
    }
    (dist, far)
}

/// Emits the ordering of `g` (a subgraph in local ids) into `out`,
/// translating through `original` (local id → caller id).
fn order_recursive(g: &Graph, original: &[NodeId], leaf: u32, out: &mut Vec<NodeId>) {
    let n = g.n();
    if n <= leaf {
        out.extend(original.iter().copied());
        return;
    }
    // pick an endpoint of a long axis: double BFS from node 0's component
    let (_, far0) = far_probe(g, 0);
    let (dist, _) = far_probe(g, far0);
    // nodes sorted by (distance from the axis endpoint, id); unreached
    // components sort last and recurse as the far half
    let mut by_dist: Vec<NodeId> = (0..n).collect();
    by_dist.sort_by_key(|&u| (dist[u as usize], u));
    let mid = (n / 2) as usize;
    let near: Vec<NodeId> = by_dist[..mid].to_vec();
    let far: Vec<NodeId> = by_dist[mid..].to_vec();
    for half in [near, far] {
        let sub = induced(g, &half);
        let mapped: Vec<NodeId> = half.iter().map(|&u| original[u as usize]).collect();
        order_recursive(&sub.graph, &mapped, leaf, out);
    }
}

impl OrderingAlgorithm for Bisection {
    fn params(&self) -> String {
        format!("leaf={}", self.leaf_size)
    }

    fn name(&self) -> &'static str {
        "Bisect"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.n();
        if n == 0 {
            return Permutation::identity(0);
        }
        let identity: Vec<NodeId> = g.nodes().collect();
        let mut out = Vec::with_capacity(n as usize);
        order_recursive(g, &identity, self.leaf_size, &mut out);
        Permutation::from_placement(&out).expect("bisection emits every node once")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_core::score::minla_energy_of;
    use gorder_graph::gen::stochastic_block_model;
    use gorder_graph::Permutation as P;
    use rand::SeedableRng;

    #[test]
    fn valid_permutation() {
        let g = stochastic_block_model(300, 10, 0.2, 0.01, 3);
        let perm = Bisection::default().compute(&g);
        crate::assert_valid_for(&perm, &g);
    }

    #[test]
    fn path_is_kept_in_order_ish() {
        // bisection of a path by distance from an endpoint produces a
        // near-monotone layout: spans stay tiny
        let edges: Vec<(NodeId, NodeId)> = (0..63).map(|u| (u, u + 1)).collect();
        let g = Graph::from_edges(64, &edges);
        let perm = Bisection::new(8).compute(&g);
        let energy = minla_energy_of(&g, &perm);
        // identity has energy 63; allow modest slack for half boundaries
        assert!(energy <= 4 * 63, "path energy {energy} too high");
    }

    #[test]
    fn groups_planted_blocks() {
        // on an SBM with strong blocks and shuffled ids, bisection should
        // reduce arrangement energy far below random
        let g0 = stochastic_block_model(400, 8, 0.25, 0.002, 9);
        let shuffle = P::random(g0.n(), &mut rand::rngs::StdRng::seed_from_u64(4));
        let g = g0.relabel(&shuffle);
        let bis = minla_energy_of(&g, &Bisection::default().compute(&g));
        let rnd = minla_energy_of(
            &g,
            &P::random(g.n(), &mut rand::rngs::StdRng::seed_from_u64(8)),
        );
        assert!(
            (bis as f64) < 0.8 * rnd as f64,
            "bisection energy {bis} should be well below random {rnd}"
        );
    }

    #[test]
    fn handles_disconnected() {
        let g = Graph::from_edges(10, &[(0, 1), (1, 2), (5, 6), (8, 9)]);
        let perm = Bisection::new(2).compute(&g);
        crate::assert_valid_for(&perm, &g);
    }

    #[test]
    fn leaf_size_one_and_huge() {
        let g = stochastic_block_model(50, 5, 0.3, 0.02, 2);
        for leaf in [1, 1000] {
            let perm = Bisection::new(leaf).compute(&g);
            crate::assert_valid_for(&perm, &g);
        }
        // huge leaf = identity (single leaf keeps input order)
        assert!(Bisection::new(1000).compute(&g).is_identity());
    }

    #[test]
    fn empty() {
        assert_eq!(Bisection::default().compute(&Graph::empty(0)).len(), 0);
    }
}
