//! [`OrderingAlgorithm`] adapter for the Gorder algorithm from
//! `gorder-core`, so the harness can sweep it alongside the baselines.

use crate::runner::OrderStats;
use crate::OrderingAlgorithm;
use gorder_core::budget::{Budget, ExecOutcome};
use gorder_core::{Gorder, GorderBuilder};
use gorder_engine::ExecPlan;
use gorder_graph::{Graph, Permutation};

/// Gorder as a member of the ordering zoo.
pub struct GorderOrdering {
    inner: Gorder,
}

impl GorderOrdering {
    /// Paper defaults (`w = 5`).
    pub fn with_defaults() -> Self {
        GorderOrdering {
            inner: Gorder::with_defaults(),
        }
    }

    /// Gorder with an explicit window size.
    pub fn with_window(w: u32) -> Self {
        GorderOrdering {
            inner: GorderBuilder::new().window(w).build(),
        }
    }

    /// Wraps an already-configured [`Gorder`].
    pub fn from_gorder(inner: Gorder) -> Self {
        GorderOrdering { inner }
    }

    /// The window size `w` this instance optimises for. Surfaced so
    /// harnesses that override the window (the regression gate's
    /// injected-regression hook) can report the value they ran with.
    pub fn window(&self) -> u32 {
        self.inner.window_size()
    }
}

impl OrderingAlgorithm for GorderOrdering {
    fn name(&self) -> &'static str {
        "Gorder"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        self.inner.compute(g)
    }

    fn compute_budgeted(&self, g: &Graph, budget: &Budget) -> ExecOutcome<Permutation> {
        self.inner.compute_budgeted(g, budget)
    }

    fn compute_plan(
        &self,
        g: &Graph,
        _plan: ExecPlan,
        budget: &Budget,
        stats: &mut OrderStats,
    ) -> ExecOutcome<Permutation> {
        let (outcome, gs) = self.inner.compute_budgeted_with_stats(g, budget);
        stats.heap_increments = gs.increments;
        stats.heap_decrements = gs.decrements;
        stats.heap_pops = gs.pops;
        stats.hub_skips = gs.hub_skips;
        stats.heap_refreshes = gs.refreshes;
        outcome
    }

    fn params(&self) -> String {
        let mut p = format!("w={}", self.inner.window_size());
        if let Some(t) = self.inner.hub_threshold() {
            p.push_str(&format!(",hub={t}"));
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_core::score::f_score_of;
    use gorder_graph::gen::copying_model;

    #[test]
    fn adapter_matches_core() {
        let g = copying_model(200, 5, 0.6, 3);
        let via_trait = GorderOrdering::with_defaults().compute(&g);
        let via_core = Gorder::with_defaults().compute(&g);
        assert_eq!(via_trait.as_slice(), via_core.as_slice());
    }

    #[test]
    fn window_is_forwarded() {
        let g = copying_model(200, 5, 0.6, 3);
        let w2 = GorderOrdering::with_window(2).compute(&g);
        let w32 = GorderOrdering::with_window(32).compute(&g);
        // different windows generally give different layouts
        assert_ne!(w2.as_slice(), w32.as_slice());
        // and each scores well on its own objective vs identity
        assert!(f_score_of(&g, &w32, 32) > 0);
    }
}
