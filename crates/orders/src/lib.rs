//! # gorder-orders — the ordering zoo
//!
//! Every node-ordering method of the Gorder evaluation (Section 2.3 of the
//! replication), behind one object-safe trait so the harness can sweep
//! them:
//!
//! | name | method | module |
//! |---|---|---|
//! | Original | identity (the order the dataset shipped in) | [`trivial`] |
//! | Random | uniform shuffle (replication's added worst-case) | [`trivial`] |
//! | MinLA | simulated annealing on `Σ ∣π(u) − π(v)∣` | [`annealing`] |
//! | MinLogA | simulated annealing on `Σ ln ∣π(u) − π(v)∣` | [`annealing`] |
//! | RCM | Reverse Cuthill–McKee (bandwidth-reducing BFS) | [`rcm`] |
//! | InDegSort | descending in-degree sort | [`degsort`] |
//! | ChDFS | children-first DFS discovery order | [`chdfs`] |
//! | SlashBurn | hub/spokes separation (simplified, per replication) | [`slashburn`] |
//! | LDG | linear deterministic greedy partitioning, k = 64 | [`ldg`] |
//! | **Gorder** | the paper's contribution (from `gorder-core`) | [`gorder_impl`] |
//!
//! Metis is omitted from the headline zoo, as in the replication (it
//! does not scale to the evaluation's graphs); [`bisection`] provides a
//! lightweight partitioning ordering in its place, and [`extensions`]
//! adds the follow-on literature's HubSort/HubCluster/DBG.

pub mod annealing;
pub mod bisection;
pub mod cache;
pub mod chdfs;
pub mod degsort;
pub mod extensions;
pub mod gorder_impl;
pub mod ldg;
pub mod parallel;
pub mod rcm;
pub mod runner;
pub mod single_flight;
pub mod slashburn;
pub mod trivial;
pub mod undirected;

pub use annealing::{Annealing, EnergyModel};
pub use bisection::Bisection;
pub use cache::{graph_digest, CacheKey, OrderCache};
pub use chdfs::ChDfs;
pub use degsort::InDegSort;
pub use extensions::{Dbg, HubCluster, HubSort};
pub use ldg::Ldg;
pub use parallel::ParallelGorder;
pub use rcm::Rcm;
pub use runner::{run_by_name_plan, run_ordering, OrderStats, OrderingRun};
pub use single_flight::{FlightResult, SingleFlight};
pub use slashburn::SlashBurn;
pub use trivial::{Original, RandomOrder};

// Re-exported so downstream crates (e.g. `gorder-bench`) can build plans
// without depending on the engine crate directly.
pub use gorder_engine::ExecPlan;

use gorder_core::budget::{Budget, ExecOutcome};
use gorder_graph::{Graph, Permutation};

/// A node-ordering method: computes a bijection `old id → new id`.
///
/// Object-safe so harnesses can hold `Vec<Box<dyn OrderingAlgorithm>>`.
pub trait OrderingAlgorithm: Send + Sync {
    /// Name as it appears in the paper's figures.
    fn name(&self) -> &'static str;
    /// Computes the permutation for `g`.
    fn compute(&self, g: &Graph) -> Permutation;
    /// Budget-aware variant. The default forwards to
    /// [`compute`](Self::compute) — right for the cheap orderings, which
    /// finish long before any realistic budget bites (they only check the
    /// budget on entry, so a pre-cancelled budget still short-circuits).
    /// Anytime orderings (Gorder, the annealers) override this to stop at
    /// the budget and return their best valid permutation so far.
    fn compute_budgeted(&self, g: &Graph, budget: &Budget) -> ExecOutcome<Permutation> {
        if budget.exhausted(0).is_some() {
            return ExecOutcome::TimedOut;
        }
        ExecOutcome::Completed(self.compute(g))
    }
    /// Plan- and stats-aware variant, the entry point the unified runner
    /// ([`run_ordering`]) calls. Mirrors the kernel engine's contract:
    /// **plans never change results** — the permutation under any
    /// [`ExecPlan`] is identical to the serial one (partition-parallel
    /// Gorder, which trades quality for speed, is therefore a separate
    /// opt-in algorithm, [`ParallelGorder`], not a plan behaviour).
    /// The default forwards to [`compute_budgeted`](Self::compute_budgeted)
    /// and records nothing extra; orderings with internal counters
    /// (the Gorder family) override this to fill `stats`.
    fn compute_plan(
        &self,
        g: &Graph,
        _plan: ExecPlan,
        budget: &Budget,
        _stats: &mut OrderStats,
    ) -> ExecOutcome<Permutation> {
        self.compute_budgeted(g, budget)
    }
    /// Canonical parameter string for cache keys and trace records, e.g.
    /// `"w=5"`. Empty for parameter-free orderings. Must cover every
    /// knob that changes the output permutation (seeds are keyed
    /// separately).
    fn params(&self) -> String {
        String::new()
    }
}

/// All ten orderings in the replication's presentation order, with its
/// default parameters (`S = m`, `k = m/n` for annealing; `k = 64` bins for
/// LDG; `w = 5` for Gorder). `seed` feeds every randomised method.
pub fn all(seed: u64) -> Vec<Box<dyn OrderingAlgorithm>> {
    vec![
        Box::new(Original),
        Box::new(RandomOrder::new(seed)),
        Box::new(Annealing::minla(seed)),
        Box::new(Annealing::minloga(seed)),
        Box::new(Rcm),
        Box::new(InDegSort),
        Box::new(ChDfs),
        Box::new(SlashBurn::new()),
        Box::new(Ldg::new(64)),
        Box::new(gorder_impl::GorderOrdering::with_defaults()),
    ]
}

/// Looks an ordering up by its figure label, case-insensitively.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn OrderingAlgorithm>> {
    all(seed)
        .into_iter()
        .find(|o| o.name().eq_ignore_ascii_case(name))
}

/// [`by_name`] over the extended zoo ([`extensions::extended`]): the ten
/// headline orderings plus HubSort, HubCluster, DBG, and Bisect.
pub fn by_name_extended(name: &str, seed: u64) -> Option<Box<dyn OrderingAlgorithm>> {
    extensions::extended(seed)
        .into_iter()
        .find(|o| o.name().eq_ignore_ascii_case(name))
}

/// The ten headline ordering names, in the paper's presentation order.
pub fn all_names() -> Vec<&'static str> {
    all(0).iter().map(|o| o.name()).collect()
}

/// Every ordering name the registry knows, including the extensions —
/// the vocabulary `--orderings` filters and `list-orderings` print.
pub fn extended_names() -> Vec<&'static str> {
    extensions::extended(0).iter().map(|o| o.name()).collect()
}

/// Suggests the closest known (extended) ordering name within edit
/// distance 3 of `name`, case-insensitively — for "did you mean ...?"
/// errors on `--orderings` typos.
pub fn suggest_name(name: &str) -> Option<&'static str> {
    let lower = name.to_ascii_lowercase();
    extended_names()
        .into_iter()
        .map(|known| (edit_distance(&lower, &known.to_ascii_lowercase()), known))
        .filter(|&(d, _)| d <= 3)
        .min_by_key(|&(d, _)| d)
        .map(|(_, known)| known)
}

/// Levenshtein distance over bytes (names are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Checks that `perm` is a valid permutation for `g` (test helper).
pub fn assert_valid_for(perm: &Permutation, g: &Graph) {
    assert_eq!(perm.len(), g.n(), "permutation size mismatch");
    let mut seen = vec![false; g.n() as usize];
    for u in g.nodes() {
        let p = perm.apply(u) as usize;
        assert!(!seen[p], "duplicate image {p}");
        seen[p] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::gen::{copying_model, preferential_attachment, PrefAttachConfig};

    fn graphs() -> Vec<Graph> {
        vec![
            Graph::empty(0),
            Graph::empty(1),
            Graph::empty(5),
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            preferential_attachment(PrefAttachConfig {
                n: 300,
                out_degree: 5,
                reciprocity: 0.3,
                uniform_mix: 0.2,
                closure_prob: 0.3,
                recency_bias: 0.3,
                seed: 5,
            }),
            copying_model(250, 6, 0.6, 8),
        ]
    }

    #[test]
    fn registry_has_ten_in_paper_order() {
        let names: Vec<&str> = all(1).iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec![
                "Original",
                "Random",
                "MinLA",
                "MinLogA",
                "RCM",
                "InDegSort",
                "ChDFS",
                "SlashBurn",
                "LDG",
                "Gorder"
            ]
        );
    }

    #[test]
    fn every_ordering_yields_valid_permutations() {
        for g in graphs() {
            for o in all(7) {
                let perm = o.compute(&g);
                assert_valid_for(&perm, &g);
            }
        }
    }

    #[test]
    fn every_ordering_is_deterministic() {
        let g = preferential_attachment(PrefAttachConfig {
            n: 200,
            out_degree: 4,
            reciprocity: 0.3,
            uniform_mix: 0.2,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 9,
        });
        for (a, b) in all(3).into_iter().zip(all(3)) {
            assert_eq!(
                a.compute(&g).as_slice(),
                b.compute(&g).as_slice(),
                "{} not deterministic",
                a.name()
            );
        }
    }

    #[test]
    fn by_name_finds_each() {
        for o in all(1) {
            assert!(by_name(o.name(), 1).is_some(), "{} missing", o.name());
        }
        assert!(by_name("Metis", 1).is_none());
    }

    #[test]
    fn name_lists_cover_the_registries() {
        assert_eq!(all_names().len(), 10);
        assert_eq!(extended_names().len(), 14);
        assert!(extended_names().contains(&"HubSort"));
        for name in extended_names() {
            assert!(by_name_extended(name, 1).is_some(), "{name} missing");
        }
    }

    #[test]
    fn suggest_name_catches_typos() {
        assert_eq!(suggest_name("Gordor"), Some("Gorder"));
        assert_eq!(suggest_name("chdfs"), Some("ChDFS"));
        assert_eq!(suggest_name("HubSrt"), Some("HubSort"));
        assert_eq!(suggest_name("minlog"), Some("MinLogA"));
        assert_eq!(suggest_name("zzzzzzzzzz"), None);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(by_name("gorder", 1).unwrap().name(), "Gorder");
        assert_eq!(by_name("RCM", 1).unwrap().name(), "RCM");
        assert_eq!(by_name("chdfs", 1).unwrap().name(), "ChDFS");
        assert_eq!(by_name("MINLOGA", 1).unwrap().name(), "MinLogA");
    }
}
