//! The unified ordering runner — the ordering-side twin of the kernel
//! engine's `run_kernel`.
//!
//! Every ordering construction in the harness goes through
//! [`run_ordering`]: it times the computation, collects the ordering's
//! internal counters into an [`OrderStats`], exports those counters to
//! the global [`gorder_obs`] registry **exactly once per run** (the
//! legacy `GorderStats::export` double-counted or under-counted
//! depending on which compute path the caller picked — that method is
//! gone), and hands back the permutation and stats together as an
//! [`OrderingRun`].
//!
//! [`run_by_name_plan`] is the string-keyed entry point the CLI and
//! sweeps use: it resolves a name against the extended registry
//! ([`crate::extensions::extended`]) and runs it under a plan + budget.

use std::time::Instant;

use gorder_core::budget::{Budget, ExecOutcome};
use gorder_engine::ExecPlan;
use gorder_graph::Graph;
use gorder_graph::Permutation;

use crate::OrderingAlgorithm;

/// Counters and timings describing one ordering construction — the
/// ordering-side mirror of the engine's `KernelStats`. Heap counters are
/// zero for orderings that do not run on the unit heap.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OrderStats {
    /// Nodes the ordering placed (= `g.n()` for a completed run).
    pub nodes_placed: u64,
    /// Coalesced unit-heap updates with a positive net key change
    /// (Gorder family; one per touched candidate per placement step).
    pub heap_increments: u64,
    /// Coalesced unit-heap updates with a negative net key change
    /// (Gorder family).
    pub heap_decrements: u64,
    /// Unit-heap max-pops (Gorder family).
    pub heap_pops: u64,
    /// Coalesced unit-heap updates with a net key change of zero —
    /// bucket-position refreshes that keep per-unit tie-breaking intact
    /// (Gorder family).
    pub heap_refreshes: u64,
    /// Sibling propagations skipped by the hub threshold (Gorder family).
    pub hub_skips: u64,
    /// Seconds spent computing the permutation.
    pub compute_secs: f64,
    /// Seconds spent validating/finishing (bijection checks, mapping).
    pub finish_secs: f64,
    /// Worker threads the ordering actually used (1 for the serial zoo).
    pub threads_used: u32,
    /// Whether the run degraded (budget exhausted mid-build).
    pub degraded: bool,
    /// Whether the permutation came from the on-disk cache rather than
    /// being computed ([`crate::cache::OrderCache`]).
    pub cache_hit: bool,
}

impl OrderStats {
    /// Exports this run's counters to the global registry, namespaced
    /// under the ordering's name. Called exactly once per run by
    /// [`run_ordering`] — callers must not re-export.
    pub fn export(&self, ordering: &str) {
        let reg = gorder_obs::global();
        reg.counter_add(&format!("order.{ordering}.runs"), 1);
        reg.counter_add(&format!("order.{ordering}.nodes_placed"), self.nodes_placed);
        reg.counter_add(
            &format!("order.{ordering}.heap.increments"),
            self.heap_increments,
        );
        reg.counter_add(
            &format!("order.{ordering}.heap.decrements"),
            self.heap_decrements,
        );
        reg.counter_add(&format!("order.{ordering}.heap.pops"), self.heap_pops);
        reg.counter_add(
            &format!("order.{ordering}.heap.refreshes"),
            self.heap_refreshes,
        );
        reg.counter_add(&format!("order.{ordering}.hub_skips"), self.hub_skips);
        reg.span_record(&format!("order.{ordering}.compute"), self.compute_secs);
        reg.gauge_set(
            &format!("order.{ordering}.threads_used"),
            f64::from(self.threads_used),
        );
    }
}

/// A finished ordering construction: the permutation plus everything we
/// measured while building it.
#[derive(Debug, Clone)]
pub struct OrderingRun {
    /// The computed (or cache-loaded) permutation, `old id → new id`.
    pub perm: Permutation,
    /// Counters and timings for this construction.
    pub stats: OrderStats,
}

/// Runs one ordering under a plan and budget, returning the permutation
/// with populated [`OrderStats`]. This is the single stats path: counters
/// reach the global registry exactly once, here, on `Completed` and
/// `Degraded` outcomes (a run that produced no permutation exports
/// nothing).
pub fn run_ordering(
    o: &dyn OrderingAlgorithm,
    g: &Graph,
    plan: ExecPlan,
    budget: &Budget,
) -> ExecOutcome<OrderingRun> {
    let mut stats = OrderStats {
        threads_used: 1,
        ..OrderStats::default()
    };
    let t0 = Instant::now();
    let outcome = o.compute_plan(g, plan, budget, &mut stats);
    stats.compute_secs = t0.elapsed().as_secs_f64();
    let finish = |mut stats: OrderStats, perm: &Permutation, degraded: bool| {
        let t1 = Instant::now();
        stats.nodes_placed = u64::from(perm.len());
        stats.degraded = degraded;
        stats.finish_secs = t1.elapsed().as_secs_f64();
        stats.export(o.name());
        stats
    };
    match outcome {
        ExecOutcome::Completed(perm) => {
            let stats = finish(stats, &perm, false);
            ExecOutcome::Completed(OrderingRun { perm, stats })
        }
        ExecOutcome::Degraded(perm, reason) => {
            let stats = finish(stats, &perm, true);
            ExecOutcome::Degraded(OrderingRun { perm, stats }, reason)
        }
        ExecOutcome::TimedOut => ExecOutcome::TimedOut,
        ExecOutcome::Failed(e) => ExecOutcome::Failed(e),
    }
}

/// Resolves `name` against the extended registry (case-insensitively)
/// and runs it via [`run_ordering`]. `None` means the name is unknown —
/// callers can offer [`crate::suggest_name`] in their error message.
pub fn run_by_name_plan(
    name: &str,
    seed: u64,
    g: &Graph,
    plan: ExecPlan,
    budget: &Budget,
) -> Option<ExecOutcome<OrderingRun>> {
    let o = crate::by_name_extended(name, seed)?;
    Some(run_ordering(o.as_ref(), g, plan, budget))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_valid_for;
    use gorder_graph::gen::copying_model;

    fn graph() -> Graph {
        copying_model(300, 5, 0.6, 11)
    }

    #[test]
    fn runner_completes_with_populated_stats() {
        let g = graph();
        let run = run_by_name_plan("Gorder", 1, &g, ExecPlan::Serial, &Budget::unlimited())
            .expect("known name")
            .value()
            .expect("completes");
        assert_valid_for(&run.perm, &g);
        assert_eq!(run.stats.nodes_placed, u64::from(g.n()));
        assert!(run.stats.heap_pops > 0, "gorder pops the heap");
        assert!(run.stats.heap_increments > 0);
        assert_eq!(run.stats.threads_used, 1);
        assert!(!run.stats.degraded);
        assert!(!run.stats.cache_hit);
    }

    #[test]
    fn unknown_name_is_none() {
        let g = Graph::empty(1);
        assert!(run_by_name_plan("Metis", 1, &g, ExecPlan::Serial, &Budget::unlimited()).is_none());
    }

    #[test]
    fn plans_never_change_results() {
        let g = graph();
        for name in crate::extended_names() {
            let serial = run_by_name_plan(name, 3, &g, ExecPlan::Serial, &Budget::unlimited())
                .unwrap()
                .value()
                .unwrap();
            let planned =
                run_by_name_plan(name, 3, &g, ExecPlan::with_threads(4), &Budget::unlimited())
                    .unwrap()
                    .value()
                    .unwrap();
            assert_eq!(
                serial.perm.as_slice(),
                planned.perm.as_slice(),
                "{name} permutation must be plan-independent"
            );
        }
    }

    #[test]
    fn degraded_run_reports_degraded_stats() {
        let g = graph();
        let budget = Budget::unlimited().with_node_cap(32);
        match run_by_name_plan("Gorder", 1, &g, ExecPlan::Serial, &budget).unwrap() {
            ExecOutcome::Degraded(run, _) => {
                assert_valid_for(&run.perm, &g);
                assert!(run.stats.degraded);
            }
            other => panic!("expected degraded, got {}", other.status_label()),
        }
    }
}
