//! Concurrent-writer tests for the on-disk permutation cache.
//!
//! The cache's atomicity story ("temp + fsync + rename, never a torn
//! entry") only holds if two racing `store` calls for the *same* key
//! never share a temp file. These tests hammer exactly that window:
//! many threads storing the same key (same bytes, as in a single-flight
//! miss-storm) and readers polling throughout — every store must
//! succeed, every successful load must be the exact permutation, and
//! no `.tmp` litter may survive.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

use gorder_graph::Permutation;
use gorder_orders::{CacheKey, OrderCache};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gorder-cache-race-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key(tag: u64) -> CacheKey {
    CacheKey {
        graph_digest: tag,
        ordering: "Gorder".to_string(),
        params: "w=5".to_string(),
        seed: 42,
    }
}

#[test]
fn racing_writers_on_one_key_all_succeed() {
    const WRITERS: usize = 8;
    const ROUNDS: usize = 20;
    let dir = tmpdir("same-key");
    let cache = OrderCache::new(&dir).unwrap();
    let n = 64u32;
    let perm = Permutation::random(n, &mut StdRng::seed_from_u64(3));
    let k = key(11);

    for _ in 0..ROUNDS {
        let barrier = Arc::new(Barrier::new(WRITERS));
        std::thread::scope(|s| {
            for _ in 0..WRITERS {
                let (cache, perm, k, barrier) = (&cache, &perm, &k, barrier.clone());
                s.spawn(move || {
                    barrier.wait();
                    cache.store(k, perm).expect("racing store must succeed");
                });
            }
        });
        let loaded = cache.load(&k, n).expect("entry present after the race");
        assert_eq!(loaded.as_slice(), perm.as_slice(), "no torn entry");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn readers_racing_writers_never_see_torn_entries() {
    const WRITERS: usize = 4;
    const READS: usize = 200;
    let dir = tmpdir("read-write");
    let cache = OrderCache::new(&dir).unwrap();
    let n = 128u32;
    let perm = Permutation::random(n, &mut StdRng::seed_from_u64(5));
    let k = key(23);

    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let (cache, perm, k) = (&cache, &perm, &k);
            s.spawn(move || {
                for _ in 0..READS / 4 {
                    cache.store(k, perm).expect("store");
                }
            });
        }
        let (cache, perm, k) = (&cache, &perm, &k);
        s.spawn(move || {
            let mut hits = 0;
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while hits < READS && std::time::Instant::now() < deadline {
                // A miss (not-yet-written) is fine; a wrong permutation
                // or a decode panic is the failure this guards against.
                if let Some(loaded) = cache.load(k, n) {
                    assert_eq!(loaded.as_slice(), perm.as_slice());
                    hits += 1;
                }
            }
            assert!(hits > 0, "no read observed the entry within 10s");
        });
    });
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn racing_writers_leave_no_tmp_litter() {
    const WRITERS: usize = 8;
    let dir = tmpdir("litter");
    let cache = OrderCache::new(&dir).unwrap();
    let n = 32u32;
    let perm = Permutation::random(n, &mut StdRng::seed_from_u64(8));
    let barrier = Arc::new(Barrier::new(WRITERS));

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let (cache, perm, barrier) = (&cache, &perm, barrier.clone());
            s.spawn(move || {
                barrier.wait();
                // Half the writers share one key, half spread out —
                // both patterns must clean up their temp files.
                cache.store(&key(u64::from(w as u32) % 2), perm).unwrap();
            });
        }
    });

    let leftovers: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp litter: {leftovers:?}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn distinct_keys_race_cleanly() {
    const WRITERS: usize = 8;
    let dir = tmpdir("distinct");
    let cache = OrderCache::new(&dir).unwrap();
    let n = 48u32;
    let perms: Vec<Permutation> = (0..WRITERS as u64)
        .map(|i| Permutation::random(n, &mut StdRng::seed_from_u64(i)))
        .collect();
    let barrier = Arc::new(Barrier::new(WRITERS));

    std::thread::scope(|s| {
        for (i, perm) in perms.iter().enumerate() {
            let (cache, barrier) = (&cache, barrier.clone());
            s.spawn(move || {
                barrier.wait();
                cache.store(&key(100 + i as u64), perm).unwrap();
            });
        }
    });
    for (i, perm) in perms.iter().enumerate() {
        let loaded = cache.load(&key(100 + i as u64), n).expect("each key lands");
        assert_eq!(loaded.as_slice(), perm.as_slice());
    }
    let _ = fs::remove_dir_all(&dir);
}
