//! Property and adversarial tests for the on-disk permutation cache.

use std::fs;
use std::path::PathBuf;

use gorder_graph::{Graph, Permutation};
use gorder_orders::gorder_impl::GorderOrdering;
use gorder_orders::{CacheKey, OrderCache, OrderingAlgorithm};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gorder-cache-props-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key(tag: u64) -> CacheKey {
    CacheKey {
        graph_digest: tag,
        ordering: "Gorder".to_string(),
        params: "w=5".to_string(),
        seed: 42,
    }
}

proptest! {
    // A cache round-trip returns the exact permutation, bit for bit,
    // for arbitrary sizes and contents.
    #[test]
    fn round_trip_returns_exact_permutation(n in 1u32..300, perm_seed in 0u64..u64::MAX) {
        let dir = tmpdir("roundtrip");
        let cache = OrderCache::new(&dir).unwrap();
        let perm = Permutation::random(n, &mut StdRng::seed_from_u64(perm_seed));
        let k = key(perm_seed);
        cache.store(&k, &perm).unwrap();
        let loaded = cache.load(&k, n).expect("stored entry must load");
        prop_assert_eq!(loaded.as_slice(), perm.as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    // Truncating a stored entry at any point makes it a miss, never a
    // wrong permutation and never a panic.
    #[test]
    fn any_truncation_is_rejected(n in 1u32..60, cut_milli in 0u32..1000) {
        let dir = tmpdir("truncate");
        let cache = OrderCache::new(&dir).unwrap();
        let perm = Permutation::random(n, &mut StdRng::seed_from_u64(9));
        let k = key(7);
        let path = cache.store(&k, &perm).unwrap();
        let full = fs::read(&path).unwrap();
        let cut = full.len() * cut_milli as usize / 1000;
        prop_assume!(cut < full.len());
        fs::write(&path, &full[..cut]).unwrap();
        prop_assert!(cache.load(&k, n).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    // Flipping any single byte of a stored entry makes it a miss.
    #[test]
    fn any_single_byte_corruption_is_rejected(n in 1u32..60, pos_milli in 0u32..1000) {
        let dir = tmpdir("flip");
        let cache = OrderCache::new(&dir).unwrap();
        let perm = Permutation::random(n, &mut StdRng::seed_from_u64(3));
        let k = key(11);
        let path = cache.store(&k, &perm).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let pos = (bytes.len() - 1) * pos_milli as usize / 1000;
        bytes[pos] ^= 0x5a;
        fs::write(&path, &bytes).unwrap();
        prop_assert!(cache.load(&k, n).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn mutated_graph_misses() {
    let dir = tmpdir("graphmut");
    let cache = OrderCache::new(&dir).unwrap();
    let g = Graph::from_edges(50, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let o = GorderOrdering::with_defaults();
    let k = CacheKey::for_ordering(&g, &o, 42);
    cache.store(&k, &o.compute(&g)).unwrap();
    assert!(cache.load(&k, g.n()).is_some());

    // One extra edge → different digest → different key → miss.
    let g2 = Graph::from_edges(50, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (5, 6)]);
    let k2 = CacheKey::for_ordering(&g2, &o, 42);
    assert_ne!(k.identity(), k2.identity());
    assert!(cache.load(&k2, g2.n()).is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn changed_window_or_seed_misses() {
    let dir = tmpdir("params");
    let cache = OrderCache::new(&dir).unwrap();
    let g = Graph::from_edges(40, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
    let w5 = GorderOrdering::with_defaults();
    let k = CacheKey::for_ordering(&g, &w5, 42);
    cache.store(&k, &w5.compute(&g)).unwrap();

    let w7 = GorderOrdering::with_window(7);
    let k_window = CacheKey::for_ordering(&g, &w7, 42);
    assert!(
        cache.load(&k_window, g.n()).is_none(),
        "window change must miss"
    );

    let k_seed = CacheKey::for_ordering(&g, &w5, 43);
    assert!(
        cache.load(&k_seed, g.n()).is_none(),
        "seed change must miss"
    );

    assert!(cache.load(&k, g.n()).is_some(), "original key still hits");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn swapped_entry_from_another_key_is_rejected() {
    // Even if two keys collided to one file name (or someone copies
    // files around), the embedded identity string catches it.
    let dir = tmpdir("swap");
    let cache = OrderCache::new(&dir).unwrap();
    let perm = Permutation::random(30, &mut StdRng::seed_from_u64(1));
    let a = key(100);
    let mut b = key(100);
    b.seed = 43;
    let path_a = cache.store(&a, &perm).unwrap();
    let path_b = dir.join(b.file_name());
    fs::copy(&path_a, &path_b).unwrap();
    assert!(
        cache.load(&b, 30).is_none(),
        "entry written for key A must not satisfy key B"
    );
    let _ = fs::remove_dir_all(&dir);
}
