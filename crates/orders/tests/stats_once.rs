//! The ordering-counter single-export contract: counters reach the
//! global registry exactly once per run, in `run_ordering` — never from
//! `compute`/`compute_with_stats`/`compute_budgeted` themselves (the
//! legacy `GorderStats::export()` is gone).
//!
//! One test function, so nothing else in this process touches the
//! counters between our snapshots.

use gorder_core::budget::Budget;
use gorder_core::Gorder;
use gorder_graph::gen::copying_model;
use gorder_orders::gorder_impl::GorderOrdering;
use gorder_orders::{run_ordering, ExecPlan, OrderingAlgorithm};

#[test]
fn ordering_counters_export_exactly_once_per_run() {
    let g = copying_model(200, 5, 0.6, 17);
    let reg = gorder_obs::global();
    let runs0 = reg.counter("order.Gorder.runs");
    let pops0 = reg.counter("order.Gorder.heap.pops");
    let incs0 = reg.counter("order.Gorder.heap.increments");

    // Raw compute paths are registry-silent: the stats they return are
    // plain data until the runner exports them.
    let o = GorderOrdering::with_defaults();
    let _ = o.compute(&g);
    let _ = Gorder::with_defaults().compute_with_stats(&g);
    let _ = o.compute_budgeted(&g, &Budget::unlimited());
    assert_eq!(reg.counter("order.Gorder.runs"), runs0);
    assert_eq!(reg.counter("order.Gorder.heap.pops"), pops0);
    assert_eq!(reg.counter("order.Gorder.heap.increments"), incs0);

    // One runner invocation exports exactly the run's own counters.
    let run = run_ordering(&o, &g, ExecPlan::Serial, &Budget::unlimited())
        .value()
        .expect("completes");
    assert!(run.stats.heap_pops > 0);
    assert_eq!(reg.counter("order.Gorder.runs"), runs0 + 1);
    assert_eq!(
        reg.counter("order.Gorder.heap.pops"),
        pops0 + run.stats.heap_pops
    );
    assert_eq!(
        reg.counter("order.Gorder.heap.increments"),
        incs0 + run.stats.heap_increments
    );

    // A second identical run adds the same amounts once more — no
    // double export anywhere in the path.
    let run2 = run_ordering(&o, &g, ExecPlan::Serial, &Budget::unlimited())
        .value()
        .expect("completes");
    assert_eq!(run2.stats.heap_pops, run.stats.heap_pops);
    assert_eq!(reg.counter("order.Gorder.runs"), runs0 + 2);
    assert_eq!(
        reg.counter("order.Gorder.heap.pops"),
        pops0 + 2 * run.stats.heap_pops
    );

    // And the snapshot holds each ordering counter exactly once.
    let snap = reg.snapshot();
    let pops_entries = snap
        .counters
        .iter()
        .filter(|(name, _)| name.as_str() == "order.Gorder.heap.pops")
        .count();
    assert_eq!(pops_entries, 1);
}
