//! Dependency-free scoped worker pool for parallel kernel sections.
//!
//! Mirrors `gorder_core::parallel`'s `std::thread::scope` pattern: spawn
//! one scoped thread per task, join in task order. Scoped threads let
//! tasks borrow the graph and disjoint slices of kernel state without
//! `Arc` or `'static` bounds, and joining in task order is what makes
//! parallel reductions deterministic — results come back in the order
//! the tasks were built, never in completion order.
//!
//! Each task's busy time is measured on its own thread and returned next
//! to its result, so callers can feed [`crate::KernelStats::note_thread_busy`]
//! and make partition imbalance observable.

use std::time::Instant;

/// Runs `tasks` to completion and returns `(result, busy_secs)` pairs in
/// task order.
///
/// A single task runs inline on the caller's thread (no spawn cost for
/// `threads == 1` plans); anything more spawns one scoped thread per
/// task. A worker panic propagates to the caller.
pub fn run_tasks<R, F>(tasks: Vec<F>) -> Vec<(R, f64)>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    fn timed<R, F: FnOnce() -> R>(f: F) -> (R, f64) {
        let t = Instant::now();
        let r = f();
        (r, t.elapsed().as_secs_f64())
    }

    let mut tasks = tasks;
    match tasks.len() {
        0 => Vec::new(),
        1 => vec![timed(tasks.pop().expect("len checked"))],
        _ => std::thread::scope(|s| {
            let handles: Vec<_> = tasks.into_iter().map(|f| s.spawn(|| timed(f))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_task_list_is_no_work() {
        let out: Vec<(u32, f64)> = run_tasks(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn single_task_runs_inline() {
        let x = 41;
        let out = run_tasks(vec![|| x + 1]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 42);
        assert!(out[0].1 >= 0.0);
    }

    #[test]
    fn results_come_back_in_task_order() {
        // Later tasks finish first (earlier ones spin longer); order must
        // still be task order, not completion order.
        let tasks: Vec<_> = (0..6u64)
            .map(|i| {
                move || {
                    let spins = (6 - i) * 20_000;
                    let mut acc = i;
                    for k in 0..spins {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    i
                }
            })
            .collect();
        let out = run_tasks(tasks);
        let order: Vec<u64> = out.iter().map(|&(r, _)| r).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let tasks: Vec<_> = data
            .chunks(3)
            .map(|c| move || c.iter().sum::<u64>())
            .collect();
        let out = run_tasks(tasks);
        assert_eq!(out[0].0 + out[1].0, 21);
    }
}
