//! Dependency-free scoped worker pool for parallel kernel sections.
//!
//! Mirrors `gorder_core::parallel`'s `std::thread::scope` pattern: spawn
//! one scoped thread per task, join in task order. Scoped threads let
//! tasks borrow the graph and disjoint slices of kernel state without
//! `Arc` or `'static` bounds, and joining in task order is what makes
//! parallel reductions deterministic — results come back in the order
//! the tasks were built, never in completion order.
//!
//! Each task's busy time is measured on its own thread and returned next
//! to its result, so callers can feed [`crate::KernelStats::note_thread_busy`]
//! and make partition imbalance observable.
//!
//! Worker panics are **isolated**, not fatal: every task body runs under
//! `catch_unwind`, all workers are joined even when one of them dies,
//! and the caller decides what a [`TaskOutcome::Panicked`] means. The
//! kernel call sites use the [`run_tasks`] wrapper, which rethrows the
//! first panic as a typed [`WorkerPanic`] payload that the engine driver
//! catches to retry the whole cell serially — a panic degrades one cell
//! instead of aborting the sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// How one worker task ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome<R> {
    /// The task returned `R` after `f64` busy seconds on its thread.
    Completed(R, f64),
    /// The task panicked; the payload's message is attached.
    Panicked(String),
}

/// The typed panic payload [`run_tasks`] rethrows when a worker task
/// panicked, carrying the worker's own panic message. The engine driver
/// downcasts for this to distinguish "a parallel worker died — retry the
/// cell serially" from panics it must propagate untouched.
#[derive(Debug, Clone)]
pub struct WorkerPanic(pub String);

/// Best-effort extraction of the human-readable message from a
/// `catch_unwind` payload (panics carry `&str` or `String`; anything
/// else gets a placeholder). Shared with callers that build their own
/// panic-isolation ladders (e.g. the serve crate's per-request guard).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `tasks` to completion and returns one [`TaskOutcome`] per task,
/// in task order. Panicking workers are caught — never propagated — and
/// every worker is joined before this returns, so a panic in task 3
/// still waits for tasks 4…n instead of leaving them running against
/// state the caller is about to drop.
///
/// A single task runs inline on the caller's thread (no spawn cost for
/// `threads == 1` plans); anything more spawns one scoped thread per
/// task.
pub fn run_tasks_outcomes<R, F>(tasks: Vec<F>) -> Vec<TaskOutcome<R>>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    fn guarded<R, F: FnOnce() -> R>(f: F) -> TaskOutcome<R> {
        let t = Instant::now();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            gorder_obs::faults::worker_panic("engine.worker");
            f()
        }));
        match attempt {
            Ok(r) => TaskOutcome::Completed(r, t.elapsed().as_secs_f64()),
            Err(payload) => TaskOutcome::Panicked(panic_message(payload.as_ref())),
        }
    }

    let mut tasks = tasks;
    match tasks.len() {
        0 => Vec::new(),
        1 => vec![guarded(tasks.pop().expect("len checked"))],
        _ => std::thread::scope(|s| {
            let handles: Vec<_> = tasks.into_iter().map(|f| s.spawn(|| guarded(f))).collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => outcome,
                    // guarded() catches every panic inside the task, so
                    // a join error should be impossible; still, map it
                    // like any panic rather than aborting the caller.
                    Err(payload) => TaskOutcome::Panicked(panic_message(payload.as_ref())),
                })
                .collect()
        }),
    }
}

/// Runs `tasks` to completion and returns `(result, busy_secs)` pairs in
/// task order. If any worker panicked, rethrows the first panic as a
/// [`WorkerPanic`] payload on the **caller's** thread — after every
/// worker has been joined — so the engine driver's `catch_unwind` can
/// downgrade the cell to a serial retry.
pub fn run_tasks<R, F>(tasks: Vec<F>) -> Vec<(R, f64)>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let outcomes = run_tasks_outcomes(tasks);
    let mut results = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            TaskOutcome::Completed(r, busy) => results.push((r, busy)),
            TaskOutcome::Panicked(msg) => std::panic::panic_any(WorkerPanic(msg)),
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_task_list_is_no_work() {
        let out: Vec<(u32, f64)> = run_tasks(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn single_task_runs_inline() {
        let x = 41;
        let out = run_tasks(vec![|| x + 1]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 42);
        assert!(out[0].1 >= 0.0);
    }

    #[test]
    fn results_come_back_in_task_order() {
        // Later tasks finish first (earlier ones spin longer); order must
        // still be task order, not completion order.
        let tasks: Vec<_> = (0..6u64)
            .map(|i| {
                move || {
                    let spins = (6 - i) * 20_000;
                    let mut acc = i;
                    for k in 0..spins {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    i
                }
            })
            .collect();
        let out = run_tasks(tasks);
        let order: Vec<u64> = out.iter().map(|&(r, _)| r).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let tasks: Vec<_> = data
            .chunks(3)
            .map(|c| move || c.iter().sum::<u64>())
            .collect();
        let out = run_tasks(tasks);
        assert_eq!(out[0].0 + out[1].0, 21);
    }

    #[test]
    fn panicking_worker_is_an_outcome_not_an_abort() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("worker three died")),
            Box::new(|| 3),
        ];
        let out = run_tasks_outcomes(tasks);
        assert_eq!(out.len(), 3, "all workers joined despite the panic");
        assert!(matches!(out[0], TaskOutcome::Completed(1, _)));
        match &out[1] {
            TaskOutcome::Panicked(msg) => assert!(msg.contains("worker three died"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(matches!(out[2], TaskOutcome::Completed(3, _)));
    }

    #[test]
    fn inline_single_task_panic_is_caught_too() {
        let out: Vec<TaskOutcome<u32>> =
            run_tasks_outcomes(vec![|| -> u32 { panic!("inline death") }]);
        assert!(matches!(&out[0], TaskOutcome::Panicked(m) if m.contains("inline death")));
    }

    #[test]
    fn run_tasks_rethrows_as_worker_panic() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
        let err = catch_unwind(AssertUnwindSafe(|| run_tasks(tasks))).expect_err("must rethrow");
        let wp = err
            .downcast_ref::<WorkerPanic>()
            .expect("payload is a typed WorkerPanic");
        assert!(wp.0.contains("boom"), "{}", wp.0);
    }
}
