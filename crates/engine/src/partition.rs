//! Degree-balanced CSR row-range partitioning for parallel kernels.
//!
//! Contiguous node ranges keep each worker's CSR accesses sequential (the
//! locality the orderings optimise survives parallelisation), but naive
//! `n / threads` splits collapse on power-law graphs where a few rows own
//! most of the edges. [`partition_rows`] balances on the paper's natural
//! work estimate — out-degree plus a constant per node — by walking the
//! out-offset prefix sums and cutting at evenly spaced work boundaries.
//! [`split_even`] is the edge-count-free counterpart for splitting flat
//! index ranges (e.g. a BFS frontier level) across workers.

use gorder_graph::Graph;

/// A contiguous `[start, end)` node range assigned to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRange {
    /// First node of the range (inclusive).
    pub start: u32,
    /// One past the last node of the range.
    pub end: u32,
}

impl RowRange {
    /// Number of nodes in the range.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the range covers no nodes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

/// Splits `g`'s node rows into at most `parts` contiguous ranges of
/// roughly equal work, where a node's work is its out-degree plus one.
///
/// The returned ranges are non-empty, in ascending order, and cover
/// `[0, n)` exactly; there may be fewer than `parts` of them when the
/// work is lumpy (a hub row can exceed a whole share on its own) or when
/// `parts > n`. An empty graph yields an empty vector — callers must
/// treat "no ranges" as "no work", not panic. `parts == 0` is treated
/// as 1.
pub fn partition_rows(g: &Graph, parts: usize) -> Vec<RowRange> {
    partition_offsets(g.out_csr().0, parts)
}

/// [`partition_rows`] over an explicit CSR offset array (`n + 1`
/// entries): balances on `off[u+1] − off[u] + 1` per row. Pull-based
/// kernels pass the *in*-offsets so the split balances the lists they
/// actually scan.
pub fn partition_offsets(off: &[u64], parts: usize) -> Vec<RowRange> {
    let n = off.len().saturating_sub(1);
    let parts = parts.max(1);
    if n == 0 {
        return Vec::new();
    }
    // +1 per node: isolated nodes still cost a row visit, so all-isolated
    // graphs split evenly instead of degenerating to one range.
    let total = (off[n] - off[0]) + n as u64;
    let mut ranges: Vec<RowRange> = Vec::with_capacity(parts.min(n));
    let mut start = 0usize;
    let mut acc = 0u64;
    for u in 0..n {
        acc += (off[u + 1] - off[u]) + 1;
        let boundary = total * (ranges.len() as u64 + 1) / parts as u64;
        if acc >= boundary && ranges.len() + 1 < parts {
            ranges.push(RowRange {
                start: start as u32,
                end: (u + 1) as u32,
            });
            start = u + 1;
        }
    }
    if start < n {
        ranges.push(RowRange {
            start: start as u32,
            end: n as u32,
        });
    }
    ranges
}

/// Splits the flat index range `[0, len)` into at most `parts` non-empty
/// contiguous `(start, end)` chunks of near-equal length.
///
/// Returns an empty vector for `len == 0` (an empty frontier level is
/// simply no work); `parts == 0` is treated as 1.
pub fn split_even(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let k = parts.max(1).min(len);
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 0..k {
        let end = len * (i + 1) / k;
        out.push((start, end));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_exactly(ranges: &[RowRange], n: u32) {
        let mut next = 0u32;
        for r in ranges {
            assert_eq!(r.start, next, "ranges must be contiguous");
            assert!(r.end > r.start, "ranges must be non-empty");
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover [0, n)");
    }

    #[test]
    fn empty_graph_yields_no_ranges() {
        let g = Graph::empty(0);
        for parts in [0, 1, 2, 7] {
            assert!(partition_rows(&g, parts).is_empty());
        }
    }

    #[test]
    fn single_node_yields_one_range() {
        let g = Graph::empty(1);
        for parts in [1, 2, 7] {
            let r = partition_rows(&g, parts);
            assert_eq!(r, vec![RowRange { start: 0, end: 1 }]);
        }
    }

    #[test]
    fn all_isolated_nodes_split_evenly() {
        let g = Graph::empty(8);
        let r = partition_rows(&g, 4);
        cover_exactly(&r, 8);
        assert_eq!(r.len(), 4);
        for range in &r {
            assert_eq!(range.len(), 2);
        }
    }

    #[test]
    fn more_parts_than_nodes_caps_at_n() {
        let g = Graph::empty(3);
        let r = partition_rows(&g, 16);
        cover_exactly(&r, 3);
        assert!(r.len() <= 3);
    }

    #[test]
    fn zero_parts_is_treated_as_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = partition_rows(&g, 0);
        assert_eq!(r, vec![RowRange { start: 0, end: 4 }]);
    }

    #[test]
    fn hub_row_does_not_starve_other_ranges() {
        // Node 0 owns almost all edges; the remaining nodes must still be
        // covered by valid ranges.
        let edges: Vec<(u32, u32)> = (1..64).map(|v| (0, v)).collect();
        let g = Graph::from_edges(64, &edges);
        let r = partition_rows(&g, 4);
        cover_exactly(&r, 64);
        // The hub's share exceeds a quarter of the work, so its range is
        // cut immediately after it.
        assert_eq!(r[0], RowRange { start: 0, end: 1 });
    }

    #[test]
    fn balanced_graph_balances_work() {
        // Ring: every node has out-degree 1 → perfectly even split.
        let edges: Vec<(u32, u32)> = (0..12).map(|u| (u, (u + 1) % 12)).collect();
        let g = Graph::from_edges(12, &edges);
        let r = partition_rows(&g, 3);
        cover_exactly(&r, 12);
        assert_eq!(r.len(), 3);
        for range in &r {
            assert_eq!(range.len(), 4);
        }
    }

    #[test]
    fn split_even_handles_degenerate_lengths() {
        assert!(split_even(0, 4).is_empty());
        assert_eq!(split_even(1, 4), vec![(0, 1)]);
        assert_eq!(split_even(5, 0), vec![(0, 5)]);
        let chunks = split_even(10, 3);
        assert_eq!(chunks.first().unwrap().0, 0);
        assert_eq!(chunks.last().unwrap().1, 10);
        let total: usize = chunks.iter().map(|&(a, b)| b - a).sum();
        assert_eq!(total, 10);
        for &(a, b) in &chunks {
            assert!(b > a);
        }
    }

    #[test]
    fn split_even_more_parts_than_items() {
        let chunks = split_even(2, 7);
        assert_eq!(chunks, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn offsets_variant_matches_out_partition() {
        let edges: Vec<(u32, u32)> = (0..12).map(|u| (u, (u + 1) % 12)).collect();
        let g = Graph::from_edges(12, &edges);
        assert_eq!(
            partition_rows(&g, 3),
            partition_offsets(g.out_csr().0, 3),
            "partition_rows is the out-offset specialisation"
        );
        assert!(partition_offsets(&[], 4).is_empty());
        assert!(partition_offsets(&[0], 4).is_empty());
    }
}
