//! BFS — breadth-first search.
//!
//! Full-coverage traversal: a BFS from the context source, then restarts
//! from every still-unvisited node in ascending id order, so every node
//! and every out-edge is touched exactly once regardless of
//! connectivity. Neighbours are visited in ascending id order (the CSR
//! order). Each `iterate` either seeds the next tree or expands one
//! frontier level; level-synchronous expansion visits nodes in exactly
//! the order of the legacy FIFO formulation.

use crate::mem::{BufferPool, Frontier, GraphSlots, Probe, Slot};
use crate::partition::split_even;
use crate::{parallel, Exec, ExecPlan, Kernel, KernelCtx, NoProbe};
use gorder_core::budget::Budget;
use gorder_graph::{Graph, NodeId};

/// Result of a full-coverage BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// `depth[u]` within its own BFS tree (every node is in exactly one).
    pub depth: Vec<u32>,
    /// Nodes in visit order.
    pub order: Vec<NodeId>,
    /// Number of nodes reached from the primary source (before restarts).
    pub primary_reached: u32,
}

/// BFS as an engine kernel; one `iterate` is one frontier level (or one
/// restart-tree seeding when the current level is empty).
pub struct BfsKernel {
    gs: Option<GraphSlots>,
    depth_slot: Slot,
    order_slot: Slot,
    depth: Vec<u32>,
    frontier: Frontier,
    /// Next start candidate: 0 = the context source, `k` = node `k − 1`.
    next_start: u32,
    tree_start: usize,
    primary_tree_open: bool,
    primary_reached: u32,
    done: bool,
}

impl BfsKernel {
    /// A kernel ready for `init`.
    pub fn new() -> Self {
        BfsKernel {
            gs: None,
            depth_slot: Slot::new(0),
            order_slot: Slot::new(0),
            depth: Vec::new(),
            frontier: Frontier::new(),
            next_start: 0,
            tree_start: 0,
            primary_tree_open: false,
            primary_reached: 0,
            done: false,
        }
    }

    /// The traversal result (after the run).
    pub fn into_result(self) -> BfsResult {
        BfsResult {
            depth: self.depth,
            order: self.frontier.into_items(),
            primary_reached: self.primary_reached,
        }
    }
}

impl Default for BfsKernel {
    fn default() -> Self {
        BfsKernel::new()
    }
}

impl<P: Probe> Kernel<P> for BfsKernel {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn init(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        if n == 0 {
            self.done = true;
            return;
        }
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.depth_slot = ex.probe.alloc(n, 4);
        self.order_slot = ex.probe.alloc(n, 4);
        self.depth = ex.pool.take_u32(n, u32::MAX);
        self.frontier = ex.pool.take_frontier(n);
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.done
    }

    fn iterate(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        let n = g.n();

        if self.frontier.level_len() == 0 {
            // Seed the next tree: the context source first, then every
            // node in ascending id order.
            loop {
                if self.next_start > n {
                    self.done = true;
                    return;
                }
                let s = if self.next_start == 0 {
                    ctx.source_for(g)
                } else {
                    self.next_start - 1
                };
                self.next_start += 1;
                ex.probe.touch(self.depth_slot, s as usize);
                if self.depth[s as usize] == u32::MAX {
                    self.depth[s as usize] = 0;
                    self.tree_start = self.frontier.len();
                    self.primary_tree_open = self.tree_start == 0;
                    ex.probe.touch(self.order_slot, self.frontier.len());
                    self.frontier.seed(s);
                    ex.stats.frontier_pushes += 1;
                    ex.stats.note_frontier_peak(1);
                    return;
                }
            }
        }

        // Expand the current level.
        let (head, end) = self.frontier.bounds();
        let threads = ex.par_threads();
        if threads > 1 && end - head > 1 {
            // Parallel expansion: workers scan disjoint chunks of the
            // level read-only, collecting every target still unvisited at
            // scan time; the serial merge below applies first-occurrence-
            // wins in thread order. Chunk concatenation order equals the
            // serial edge-scan order, and the whole level shares one
            // depth, so the resulting visit order, depths, and push
            // counts are exactly the serial ones.
            let du = self.depth[self.frontier.item_at(head) as usize];
            let depth = &self.depth;
            let items = self.frontier.visited();
            let (out_off, out_tgt) = g.out_csr();
            let results = parallel::run_tasks(
                split_even(end - head, threads)
                    .into_iter()
                    .map(|(cs, ce)| {
                        move || {
                            let mut edges = 0u64;
                            let mut candidates = Vec::new();
                            for &u in &items[head + cs..head + ce] {
                                let a = out_off[u as usize] as usize;
                                let b = out_off[u as usize + 1] as usize;
                                edges += (b - a) as u64;
                                for &v in &out_tgt[a..b] {
                                    if depth[v as usize] == u32::MAX {
                                        candidates.push(v);
                                    }
                                }
                            }
                            (edges, candidates)
                        }
                    })
                    .collect(),
            );
            for (t, ((edges, candidates), busy)) in results.into_iter().enumerate() {
                ex.stats.edges_relaxed += edges;
                ex.stats.note_thread_busy(t, busy);
                for v in candidates {
                    if self.depth[v as usize] == u32::MAX {
                        self.depth[v as usize] = du + 1;
                        self.frontier.push(v);
                        ex.stats.frontier_pushes += 1;
                    }
                }
            }
        } else {
            for i in head..end {
                ex.probe.touch(self.order_slot, i);
                let u = self.frontier.item_at(i);
                let du = self.depth[u as usize];
                let (list, base) = gs.out_list(&mut ex.probe, g, u);
                for (k, &v) in list.iter().enumerate() {
                    ex.probe.touch(gs.out_tgt, base + k);
                    ex.probe.touch(self.depth_slot, v as usize);
                    ex.probe.op(1);
                    ex.stats.edges_relaxed += 1;
                    if self.depth[v as usize] == u32::MAX {
                        self.depth[v as usize] = du + 1;
                        ex.probe.touch(self.depth_slot, v as usize); // write
                        ex.probe.touch(self.order_slot, self.frontier.len());
                        self.frontier.push(v);
                        ex.stats.frontier_pushes += 1;
                    }
                }
            }
        }
        self.frontier.advance();
        ex.stats.note_frontier_peak(self.frontier.level_len());
        if self.frontier.level_len() == 0 && self.primary_tree_open {
            self.primary_reached = (self.frontier.len() - self.tree_start) as u32;
            self.primary_tree_open = false;
        }
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        // Depths from the primary source are invariant under relabeling
        // (BFS level sets do not depend on visit order within a level);
        // restart-tree depths are not, so only count the primary tree.
        self.frontier.visited()[..self.primary_reached as usize]
            .iter()
            .fold(u64::from(self.primary_reached), |acc, &u| {
                acc.wrapping_add(u64::from(self.depth[u as usize]))
            })
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_u32(std::mem::take(&mut self.depth));
        pool.put_frontier(std::mem::take(&mut self.frontier));
    }
}

/// Runs a full-coverage BFS starting at `source`.
pub fn bfs(g: &Graph, source: NodeId) -> BfsResult {
    bfs_with_plan(g, source, ExecPlan::Serial)
}

/// [`bfs`] under an explicit [`ExecPlan`]; depths, visit order, and
/// counters are identical to the serial run for every plan.
pub fn bfs_with_plan(g: &Graph, source: NodeId, plan: ExecPlan) -> BfsResult {
    let mut kernel = BfsKernel::new();
    let ctx = KernelCtx {
        source: Some(source),
        ..Default::default()
    };
    let mut pool = BufferPool::new();
    let mut ex = Exec::with_plan(NoProbe, &mut pool, plan);
    let _ = crate::run_kernel(&mut kernel, g, &ctx, &mut ex, &Budget::unlimited());
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depths_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depth, vec![0, 1, 2, 3]);
        assert_eq!(r.order, vec![0, 1, 2, 3]);
        assert_eq!(r.primary_reached, 4);
    }

    #[test]
    fn restarts_cover_disconnected_parts() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)]);
        let r = bfs(&g, 0);
        assert_eq!(r.order.len(), 5);
        assert_eq!(r.primary_reached, 2);
        assert_eq!(r.depth[2], 0); // restart root
        assert_eq!(r.depth[4], 1);
    }

    #[test]
    fn single_node() {
        let r = bfs(&Graph::empty(1), 0);
        assert_eq!(r.depth, vec![0]);
        assert_eq!(r.primary_reached, 1);
    }

    #[test]
    fn parallel_visit_order_is_serial_order() {
        // Two nodes of a level share a target (3); the merge must keep
        // the serial first-encounter winner and push count.
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (1, 4),
                (2, 5),
                (3, 6),
                (4, 7),
                (5, 8),
            ],
        );
        let serial = bfs(&g, 0);
        for threads in [2, 3, 7] {
            let par = bfs_with_plan(&g, 0, ExecPlan::with_threads(threads));
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_on_degenerate_graphs() {
        for g in [Graph::empty(0), Graph::empty(1), Graph::empty(6)] {
            let serial = bfs(&g, 0);
            let par = bfs_with_plan(&g, 0, ExecPlan::with_threads(4));
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn level_stats_on_diamond() {
        use crate::run_by_name;
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let run = run_by_name(
            "BFS",
            &g,
            &KernelCtx {
                source: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(run.stats.edges_relaxed, g.m());
        assert_eq!(run.stats.frontier_pushes, 4);
        assert_eq!(run.stats.frontier_peak, 2); // level {1, 2}
    }
}
