//! DFS — depth-first search.
//!
//! Iterative (explicit stack — the paper's graphs are far too deep for
//! recursion), full coverage via restarts in ascending id order,
//! children visited in ascending id order. One `iterate` explores one
//! complete DFS tree.

use crate::mem::{BufferPool, GraphSlots, Probe, Slot};
use crate::{Exec, Kernel, KernelCtx, NoProbe};
use gorder_core::budget::Budget;
use gorder_graph::{Graph, NodeId};

/// Result of a full-coverage DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsResult {
    /// Nodes in discovery (pre-) order.
    pub preorder: Vec<NodeId>,
    /// `discovery[u]` = index of `u` in `preorder`.
    pub discovery: Vec<u32>,
    /// Number of tree edges (n − number of restart roots).
    pub tree_edges: u32,
}

/// DFS as an engine kernel; one `iterate` explores one tree (the
/// context source's first, then one per restart root).
pub struct DfsKernel {
    gs: Option<GraphSlots>,
    disc_slot: Slot,
    stack_slot: Slot,
    discovery: Vec<u32>,
    preorder: Vec<NodeId>,
    stack: Vec<(NodeId, u32)>,
    tree_edges: u32,
    /// Next start candidate: 0 = the context source, `k` = node `k − 1`.
    next_start: u32,
    done: bool,
}

impl DfsKernel {
    /// A kernel ready for `init`.
    pub fn new() -> Self {
        DfsKernel {
            gs: None,
            disc_slot: Slot::new(0),
            stack_slot: Slot::new(0),
            discovery: Vec::new(),
            preorder: Vec::new(),
            stack: Vec::new(),
            tree_edges: 0,
            next_start: 0,
            done: false,
        }
    }

    /// The traversal result (after the run).
    pub fn into_result(self) -> DfsResult {
        DfsResult {
            preorder: self.preorder,
            discovery: self.discovery,
            tree_edges: self.tree_edges,
        }
    }
}

impl Default for DfsKernel {
    fn default() -> Self {
        DfsKernel::new()
    }
}

impl<P: Probe> Kernel<P> for DfsKernel {
    fn name(&self) -> &'static str {
        "DFS"
    }

    fn init(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        if n == 0 {
            self.done = true;
            return;
        }
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.disc_slot = ex.probe.alloc(n, 4);
        self.stack_slot = ex.probe.alloc(n, 8);
        self.discovery = ex.pool.take_u32(n, u32::MAX);
        self.preorder = ex.pool.take_nodes(n);
        self.stack = ex.pool.take_pairs(n);
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.done
    }

    fn iterate(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        let n = g.n();

        // Find the next undiscovered start.
        let s = loop {
            if self.next_start > n {
                self.done = true;
                return;
            }
            let s = if self.next_start == 0 {
                ctx.source_for(g)
            } else {
                self.next_start - 1
            };
            self.next_start += 1;
            ex.probe.touch(self.disc_slot, s as usize);
            if self.discovery[s as usize] == u32::MAX {
                break s;
            }
        };

        // Explore the whole tree rooted at `s`, children expanded lazily
        // in ascending id order exactly like the recursive definition.
        self.discovery[s as usize] = self.preorder.len() as u32;
        self.preorder.push(s);
        self.stack.push((s, 0));
        ex.probe.touch(self.stack_slot, self.stack.len() - 1);
        ex.stats.frontier_pushes += 1;
        while !self.stack.is_empty() {
            ex.stats.note_frontier_peak(self.stack.len());
            let top = self.stack.len() - 1;
            ex.probe.touch(self.stack_slot, top);
            let (u, mut next) = self.stack[top];
            let (list, base) = gs.out_list(&mut ex.probe, g, u);
            let mut advanced = false;
            while (next as usize) < list.len() {
                let k = next as usize;
                let v = list[k];
                next += 1;
                ex.probe.touch(gs.out_tgt, base + k);
                ex.probe.touch(self.disc_slot, v as usize);
                ex.probe.op(1);
                ex.stats.edges_relaxed += 1;
                if self.discovery[v as usize] == u32::MAX {
                    self.discovery[v as usize] = self.preorder.len() as u32;
                    ex.probe.touch(self.disc_slot, v as usize); // write
                    self.preorder.push(v);
                    self.tree_edges += 1;
                    self.stack[top].1 = next;
                    self.stack.push((v, 0));
                    ex.probe.touch(self.stack_slot, self.stack.len() - 1);
                    ex.stats.frontier_pushes += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                self.stack.pop();
            }
        }
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        // Node count and edge count are relabeling-invariant; discovery
        // order is not, so the checksum sticks to invariants while still
        // depending on the traversal having completed.
        (self.preorder.len() as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ u64::from(self.tree_edges)
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_u32(std::mem::take(&mut self.discovery));
        pool.put_nodes(std::mem::take(&mut self.preorder));
        pool.put_pairs(std::mem::take(&mut self.stack));
    }
}

/// Runs a full-coverage iterative DFS starting at `source`.
pub fn dfs(g: &Graph, source: NodeId) -> DfsResult {
    let mut kernel = DfsKernel::new();
    let ctx = KernelCtx {
        source: Some(source),
        ..Default::default()
    };
    let mut pool = BufferPool::new();
    let mut ex = Exec::new(NoProbe, &mut pool);
    let _ = crate::run_kernel(&mut kernel, g, &ctx, &mut ex, &Budget::unlimited());
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_on_tree() {
        // 0 -> {1, 4}; 1 -> {2, 3}
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 3)]);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.tree_edges, 4);
    }

    #[test]
    fn restart_coverage() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder.len(), 4);
        assert_eq!(r.tree_edges, 2); // two trees of one edge each
    }

    #[test]
    fn discovery_indexes_preorder() {
        let g = Graph::from_edges(5, &[(0, 2), (2, 1), (1, 3), (0, 4)]);
        let r = dfs(&g, 0);
        for (i, &u) in r.preorder.iter().enumerate() {
            assert_eq!(r.discovery[u as usize], i as u32);
        }
    }
}
