//! NQ — neighbour query.
//!
//! The paper's elementary benchmark: for every node `u`, access all
//! out-neighbours and combine a per-neighbour attribute. Following the
//! replication, the attribute is the neighbour's out-degree:
//! `q_u = Σ_{v ∈ N_u} d_v`. The degree lookup `d_v` is the
//! cache-sensitive access — neighbours with nearby ids hit the same
//! cache lines of the degree array.

use crate::mem::{BufferPool, GraphSlots, Probe, Slot};
use crate::{Exec, Kernel, KernelCtx, NoProbe};
use gorder_core::budget::Budget;
use gorder_graph::Graph;

/// NQ as an engine kernel: `init` materialises the degree array, one
/// `iterate` performs the full query sweep.
pub struct NqKernel {
    gs: Option<GraphSlots>,
    deg_slot: Slot,
    q_slot: Slot,
    degree: Vec<u32>,
    q: Vec<u64>,
    checksum: u64,
    done: bool,
}

impl NqKernel {
    /// A kernel ready for `init`.
    pub fn new() -> Self {
        NqKernel {
            gs: None,
            deg_slot: Slot::new(0),
            q_slot: Slot::new(0),
            degree: Vec::new(),
            q: Vec::new(),
            checksum: 0,
            done: false,
        }
    }

    /// The per-node query values (after the run).
    pub fn into_result(self) -> Vec<u64> {
        self.q
    }
}

impl Default for NqKernel {
    fn default() -> Self {
        NqKernel::new()
    }
}

impl<P: Probe> Kernel<P> for NqKernel {
    fn name(&self) -> &'static str {
        "NQ"
    }

    fn init(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.deg_slot = ex.probe.alloc(n, 4);
        self.degree = ex.pool.take_u32(n, 0);
        // Materialise the degree array (sequential offset reads + writes).
        for u in g.nodes() {
            ex.probe.touch(gs.out_off, u as usize);
            ex.probe.touch(gs.out_off, u as usize + 1);
            ex.probe.touch(self.deg_slot, u as usize);
            ex.probe.op(1);
            self.degree[u as usize] = g.out_degree(u);
        }
        self.q_slot = ex.probe.alloc(n, 8);
        self.q = ex.pool.take_u64(n, 0);
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.done
    }

    fn iterate(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        for u in g.nodes() {
            let (list, base) = gs.out_list(&mut ex.probe, g, u);
            let mut sum = 0u64;
            for (k, &v) in list.iter().enumerate() {
                ex.probe.touch(gs.out_tgt, base + k);
                ex.probe.touch(self.deg_slot, v as usize); // the cache-sensitive access
                ex.probe.op(1);
                ex.stats.edges_relaxed += 1;
                sum += u64::from(self.degree[v as usize]);
            }
            ex.probe.touch(self.q_slot, u as usize);
            self.q[u as usize] = sum;
            self.checksum = self.checksum.wrapping_add(sum);
        }
        self.done = true;
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        // The total Σ q_u is invariant under relabeling.
        self.checksum
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_u32(std::mem::take(&mut self.degree));
        pool.put_u64(std::mem::take(&mut self.q));
    }
}

/// Computes `q_u = Σ_{v ∈ out(u)} out_degree(v)` for every node.
pub fn neighbor_query(g: &Graph) -> Vec<u64> {
    let mut kernel = NqKernel::new();
    let mut pool = BufferPool::new();
    let mut ex = Exec::new(NoProbe, &mut pool);
    let _ = crate::run_kernel(
        &mut kernel,
        g,
        &KernelCtx::default(),
        &mut ex,
        &Budget::unlimited(),
    );
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_of_neighbor_degrees() {
        // 0 -> {1, 2}; 1 -> {2}; 2 -> {}
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(neighbor_query(&g), vec![1, 0, 0]);
    }

    #[test]
    fn empty_graph() {
        assert!(neighbor_query(&Graph::empty(0)).is_empty());
        assert_eq!(neighbor_query(&Graph::empty(3)), vec![0, 0, 0]);
    }
}
