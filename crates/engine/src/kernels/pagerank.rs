//! PR — PageRank by power iteration.
//!
//! Pull-based formulation (Page et al. 1999): each iteration computes
//!
//! ```text
//! pr'[u] = (1 − α)/n + α · ( Σ_{x ∈ in(u)} pr[x] / outdeg(x)  +  D/n )
//! ```
//!
//! where `α` is the damping factor (paper: 0.85), `D` the total mass
//! sitting on dangling nodes (outdeg 0), and the iteration count is
//! fixed by the context (paper: 100). The pull over `in(u)` produces the
//! random reads into the rank array whose locality the ordering controls
//! — PR is the paper's flagship cache-bound workload. One `iterate` is
//! one power iteration; the floating-point accumulation order is
//! identical to the legacy implementation, so checksums match bit for
//! bit.

use crate::mem::{BufferPool, GraphSlots, Probe, Slot};
use crate::partition::{partition_offsets, RowRange};
use crate::{parallel, Exec, ExecPlan, Kernel, KernelCtx, NoProbe};
use gorder_core::budget::Budget;
use gorder_graph::Graph;

/// Result of a PageRank run.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// Final rank per node; sums to 1 (within FP error).
    pub rank: Vec<f64>,
    /// Iterations executed.
    pub iterations: u32,
}

impl PageRankResult {
    /// Index of the highest-ranked node (smallest id on ties).
    ///
    /// Uses [`f64::total_cmp`] so a NaN rank (possible only if a caller
    /// injects one — power iteration itself never produces NaN from
    /// finite inputs) selects deterministically instead of panicking.
    pub fn top_node(&self) -> Option<u32> {
        self.rank
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
    }
}

/// PR as an engine kernel; one `iterate` is one power iteration.
pub struct PrKernel {
    gs: Option<GraphSlots>,
    inv_out_slot: Slot,
    rank_slot: Slot,
    next_slot: Slot,
    inv_out: Vec<f64>,
    rank: Vec<f64>,
    next: Vec<f64>,
    ranges: Vec<RowRange>,
    iter: u32,
    target: u32,
    done: bool,
}

impl PrKernel {
    /// A kernel ready for `init`.
    pub fn new() -> Self {
        PrKernel {
            gs: None,
            inv_out_slot: Slot::new(0),
            rank_slot: Slot::new(0),
            next_slot: Slot::new(0),
            inv_out: Vec::new(),
            rank: Vec::new(),
            next: Vec::new(),
            ranges: Vec::new(),
            iter: 0,
            target: 0,
            done: false,
        }
    }

    /// The PageRank result (after the run).
    pub fn into_result(self) -> PageRankResult {
        PageRankResult {
            rank: self.rank,
            iterations: self.target,
        }
    }
}

impl Default for PrKernel {
    fn default() -> Self {
        PrKernel::new()
    }
}

impl<P: Probe> Kernel<P> for PrKernel {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn init(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        self.target = ctx.pr_iterations;
        if n == 0 {
            self.done = true;
            return;
        }
        let inv_n = 1.0 / n as f64;
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.inv_out_slot = ex.probe.alloc(n, 8);
        self.inv_out = ex.pool.take_f64(n, 0.0);
        // Precompute 1/outdeg to turn the inner loop into mul-adds.
        for u in g.nodes() {
            ex.probe.touch(gs.out_off, u as usize);
            ex.probe.touch(gs.out_off, u as usize + 1);
            ex.probe.touch(self.inv_out_slot, u as usize);
            ex.probe.op(1);
            let d = g.out_degree(u);
            self.inv_out[u as usize] = if d == 0 { 0.0 } else { 1.0 / f64::from(d) };
        }
        self.rank_slot = ex.probe.alloc(n, 8);
        self.next_slot = ex.probe.alloc(n, 8);
        self.rank = ex.pool.take_f64(n, inv_n);
        self.next = ex.pool.take_f64(n, 0.0);
        // The pull sweep scans in-lists, so balance on in-offsets.
        let threads = ex.par_threads();
        self.ranges = if threads > 1 {
            partition_offsets(g.in_csr().0, threads)
        } else {
            Vec::new()
        };
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.done || self.iter >= self.target
    }

    fn iterate(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        let n = g.n() as usize;
        let alpha = ctx.damping;
        let inv_n = 1.0 / n as f64;
        let mut dangling = 0.0;
        for u in g.nodes() {
            ex.probe.touch(gs.out_off, u as usize);
            ex.probe.touch(gs.out_off, u as usize + 1);
            if g.out_degree(u) == 0 {
                ex.probe.touch(self.rank_slot, u as usize);
                dangling += self.rank[u as usize];
            }
        }
        let base_rank = (1.0 - alpha) * inv_n + alpha * dangling * inv_n;
        if self.ranges.len() > 1 {
            // Parallel pull: each worker owns a disjoint slice of `next`,
            // and each node's accumulation runs in in-list order exactly
            // as the serial loop does, so the result is bit-identical.
            // The dangling scan above stays serial — its FP summation
            // order is part of the determinism contract.
            let rank = &self.rank;
            let inv_out = &self.inv_out;
            let (in_off, in_tgt) = g.in_csr();
            let mut work: Vec<(RowRange, &mut [f64])> = Vec::with_capacity(self.ranges.len());
            let mut rest = self.next.as_mut_slice();
            for &r in &self.ranges {
                let (head, tail) = rest.split_at_mut(r.len());
                rest = tail;
                work.push((r, head));
            }
            let results = parallel::run_tasks(
                work.into_iter()
                    .map(|(r, out)| {
                        move || {
                            let mut edges = 0u64;
                            for u in r.start..r.end {
                                let a = in_off[u as usize] as usize;
                                let b = in_off[u as usize + 1] as usize;
                                let mut acc = 0.0;
                                for &x in &in_tgt[a..b] {
                                    acc += rank[x as usize] * inv_out[x as usize];
                                }
                                edges += (b - a) as u64;
                                out[(u - r.start) as usize] = base_rank + alpha * acc;
                            }
                            edges
                        }
                    })
                    .collect(),
            );
            for (t, (edges, busy)) in results.into_iter().enumerate() {
                ex.stats.edges_relaxed += edges;
                ex.stats.note_thread_busy(t, busy);
            }
        } else {
            for u in g.nodes() {
                let (list, base) = gs.in_list(&mut ex.probe, g, u);
                let mut acc = 0.0;
                for (k, &x) in list.iter().enumerate() {
                    ex.probe.touch(gs.in_tgt, base + k);
                    ex.probe.touch(self.rank_slot, x as usize); // the cache-sensitive pulls
                    ex.probe.touch(self.inv_out_slot, x as usize);
                    ex.probe.op(2);
                    ex.stats.edges_relaxed += 1;
                    acc += self.rank[x as usize] * self.inv_out[x as usize];
                }
                ex.probe.touch(self.next_slot, u as usize);
                self.next[u as usize] = base_rank + alpha * acc;
            }
        }
        std::mem::swap(&mut self.rank, &mut self.next);
        ex.probe.op(1);
        self.iter += 1;
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        // Quantised total mass: invariant under relabeling up to FP
        // summation order; coarse quantisation (1e6) absorbs that.
        let total: f64 = self.rank.iter().sum();
        (total * 1e6).round() as u64
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_f64(std::mem::take(&mut self.inv_out));
        pool.put_f64(std::mem::take(&mut self.rank));
        pool.put_f64(std::mem::take(&mut self.next));
    }
}

/// Runs `iterations` rounds of the power method with damping `alpha`.
pub fn pagerank(g: &Graph, iterations: u32, alpha: f64) -> PageRankResult {
    pagerank_with_plan(g, iterations, alpha, ExecPlan::Serial)
}

/// [`pagerank`] under an explicit [`ExecPlan`]; the rank vector is
/// bit-identical to the serial run for every plan.
pub fn pagerank_with_plan(
    g: &Graph,
    iterations: u32,
    alpha: f64,
    plan: ExecPlan,
) -> PageRankResult {
    let mut kernel = PrKernel::new();
    let ctx = KernelCtx {
        pr_iterations: iterations,
        damping: alpha,
        ..Default::default()
    };
    let mut pool = BufferPool::new();
    let mut ex = Exec::with_plan(NoProbe, &mut pool, plan);
    let _ = crate::run_kernel(&mut kernel, g, &ctx, &mut ex, &Budget::unlimited());
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_conserved() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (0, 4)]);
        let r = pagerank(&g, 50, 0.85);
        let total: f64 = r.rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn sink_of_star_ranks_highest() {
        let g = Graph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let r = pagerank(&g, 100, 0.85);
        assert_eq!(r.top_node(), Some(0));
        assert!(r.rank[0] > 0.4);
    }

    #[test]
    fn zero_iterations_gives_uniform() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let r = pagerank(&g, 0, 0.85);
        for &x in &r.rank {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph() {
        let r = pagerank(&Graph::empty(0), 10, 0.85);
        assert!(r.rank.is_empty());
    }

    #[test]
    fn top_node_is_total_on_nan_ranks() {
        // A NaN rank must not panic the comparator. Under total_cmp a
        // positive NaN sorts above every finite value, and equal NaNs
        // fall through to the smallest-id tie-break.
        let r = PageRankResult {
            rank: vec![0.3, f64::NAN, 0.7, f64::NAN],
            iterations: 1,
        };
        assert_eq!(r.top_node(), Some(1));
        // Negative NaN sorts below everything; finite values still win.
        let r = PageRankResult {
            rank: vec![-f64::NAN, 0.1, 0.1],
            iterations: 1,
        };
        assert_eq!(r.top_node(), Some(1), "smallest id among the 0.1 tie");
    }

    #[test]
    fn parallel_ranks_are_bit_identical() {
        // Mix of hubs, chains, and a dangling node so the parallel split
        // is non-trivial and the dangling mass path is exercised.
        let mut edges = Vec::new();
        for v in 1..20u32 {
            edges.push((0, v));
        }
        for u in 1..19u32 {
            edges.push((u, u + 1));
            edges.push((u, 0));
        }
        let g = Graph::from_edges(21, &edges); // node 20 dangles
        let serial = pagerank(&g, 30, 0.85);
        for threads in [2, 3, 7] {
            let par = pagerank_with_plan(&g, 30, 0.85, ExecPlan::with_threads(threads));
            assert_eq!(serial, par, "threads = {threads}");
            let bits_s: Vec<u64> = serial.rank.iter().map(|x| x.to_bits()).collect();
            let bits_p: Vec<u64> = par.rank.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_s, bits_p, "bitwise at threads = {threads}");
        }
    }

    #[test]
    fn parallel_on_degenerate_graphs() {
        for g in [Graph::empty(0), Graph::empty(1), Graph::empty(5)] {
            let serial = pagerank(&g, 5, 0.85);
            let par = pagerank_with_plan(&g, 5, 0.85, ExecPlan::with_threads(4));
            assert_eq!(serial, par);
        }
    }
}
