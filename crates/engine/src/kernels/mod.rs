//! The nine paper kernels, each implemented once against the engine's
//! [`Kernel`](crate::Kernel) trait and [`Probe`](crate::Probe)
//! abstraction.
//!
//! Every module exposes the kernel state machine (`*Kernel`), the rich
//! result struct the legacy `gorder-algos` module returned, and the
//! result-returning convenience function with the legacy signature —
//! `gorder-algos` re-exports these, so library callers are unaffected
//! by the refactor. Checksums are bit-identical to the pre-engine
//! implementations: the exact loop structure, tie-breaks, floating-point
//! summation order, and RNG discipline are preserved.

pub mod bfs;
pub mod dfs;
pub mod diameter;
pub mod domset;
pub mod kcore;
pub mod nq;
pub mod pagerank;
pub mod scc;
pub mod sp;
