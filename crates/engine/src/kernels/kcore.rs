//! Kcore — core decomposition by bucket peeling.
//!
//! The O(m) peeling algorithm of Batagelj & Zaveršnik: nodes are kept
//! bucket-sorted by current (total) degree; each step peels the minimum-
//! degree node, fixes its core number, and decrements the degree of its
//! still-unpeeled neighbours, moving each one bucket down with an O(1)
//! swap. Undirected degrees — an edge counts for both endpoints. One
//! `iterate` peels exactly one node.

use crate::mem::{BufferPool, GraphSlots, Probe, Slot};
use crate::partition::partition_rows;
use crate::{parallel, Exec, ExecPlan, Kernel, KernelCtx, NoProbe};
use gorder_core::budget::Budget;
use gorder_graph::Graph;

/// Result of a core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KcoreResult {
    /// `core[u]` = core number (max k with u in the k-core).
    pub core: Vec<u32>,
}

impl KcoreResult {
    /// Degeneracy of the graph: the maximum core number.
    pub fn degeneracy(&self) -> u32 {
        self.core.iter().copied().max().unwrap_or(0)
    }
}

/// Kcore as an engine kernel; one `iterate` peels one node.
pub struct KcoreKernel {
    gs: Option<GraphSlots>,
    deg_slot: Slot,
    pos_slot: Slot,
    vert_slot: Slot,
    core_slot: Slot,
    bin_slot: Slot,
    deg: Vec<u32>,
    pos: Vec<u32>,
    vert: Vec<u32>,
    core: Vec<u32>,
    bin: Vec<u32>,
    i: usize,
    done: bool,
}

impl KcoreKernel {
    /// A kernel ready for `init`.
    pub fn new() -> Self {
        KcoreKernel {
            gs: None,
            deg_slot: Slot::new(0),
            pos_slot: Slot::new(0),
            vert_slot: Slot::new(0),
            core_slot: Slot::new(0),
            bin_slot: Slot::new(0),
            deg: Vec::new(),
            pos: Vec::new(),
            vert: Vec::new(),
            core: Vec::new(),
            bin: Vec::new(),
            i: 0,
            done: false,
        }
    }

    /// The decomposition result (after the run).
    pub fn into_result(self) -> KcoreResult {
        KcoreResult { core: self.core }
    }
}

impl Default for KcoreKernel {
    fn default() -> Self {
        KcoreKernel::new()
    }
}

impl<P: Probe> Kernel<P> for KcoreKernel {
    fn name(&self) -> &'static str {
        "Kcore"
    }

    fn init(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        if n == 0 {
            self.done = true;
            return;
        }
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.deg_slot = ex.probe.alloc(n, 4);
        self.pos_slot = ex.probe.alloc(n, 4);
        self.vert_slot = ex.probe.alloc(n, 4);
        self.core_slot = ex.probe.alloc(n, 4);
        self.deg = ex.pool.take_u32(n, 0);
        self.pos = ex.pool.take_u32(n, 0);
        self.vert = ex.pool.take_u32(n, 0);
        self.core = ex.pool.take_u32(n, 0);
        let threads = ex.par_threads();
        let mut max_deg = 0u32;
        if threads > 1 {
            // Parallel degree init: workers fill disjoint `deg` slices
            // (pure integer reads of the CSR offsets — no ordering
            // sensitivity) and report their local maximum. The bucket
            // peel below is inherently sequential (each peel mutates the
            // shared bucket structure the next one reads) and stays
            // serial under every plan.
            let ranges = partition_rows(g, threads);
            let mut work = Vec::with_capacity(ranges.len());
            let mut rest = self.deg.as_mut_slice();
            for &r in &ranges {
                let (head, tail) = rest.split_at_mut(r.len());
                rest = tail;
                work.push((r, head));
            }
            let results = parallel::run_tasks(
                work.into_iter()
                    .map(|(r, deg_out)| {
                        move || {
                            let mut local_max = 0u32;
                            for u in r.start..r.end {
                                let d = g.degree(u);
                                deg_out[(u - r.start) as usize] = d;
                                local_max = local_max.max(d);
                            }
                            local_max
                        }
                    })
                    .collect(),
            );
            for (t, (local_max, busy)) in results.into_iter().enumerate() {
                max_deg = max_deg.max(local_max);
                ex.stats.note_thread_busy(t, busy);
            }
        } else {
            for u in g.nodes() {
                ex.probe.touch(gs.out_off, u as usize);
                ex.probe.touch(gs.out_off, u as usize + 1);
                ex.probe.touch(gs.in_off, u as usize);
                ex.probe.touch(gs.in_off, u as usize + 1);
                ex.probe.touch(self.deg_slot, u as usize);
                let d = g.degree(u);
                self.deg[u as usize] = d;
                max_deg = max_deg.max(d);
            }
        }
        // Counting sort into degree buckets: bin[d] = start offset of
        // degree-d nodes in vert; pos is the inverse permutation.
        self.bin_slot = ex.probe.alloc(max_deg as usize + 2, 8);
        self.bin = ex.pool.take_u32(max_deg as usize + 2, 0);
        for u in g.nodes() {
            let d = self.deg[u as usize] as usize;
            self.bin[d + 1] += 1;
            ex.probe.touch(self.bin_slot, d + 1);
        }
        for d in 0..=max_deg as usize {
            self.bin[d + 1] += self.bin[d];
            ex.probe.touch(self.bin_slot, d + 1);
        }
        let mut cursor = self.bin.clone();
        for u in g.nodes() {
            let d = self.deg[u as usize] as usize;
            self.pos[u as usize] = cursor[d];
            self.vert[cursor[d] as usize] = u;
            ex.probe.touch(self.pos_slot, u as usize);
            ex.probe.touch(self.vert_slot, cursor[d] as usize);
            ex.probe.touch(self.bin_slot, d);
            cursor[d] += 1;
        }
        self.i = 0;
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.done
    }

    fn iterate(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        let n = g.n() as usize;
        let i = self.i;

        ex.probe.touch(self.vert_slot, i);
        let u = self.vert[i];
        ex.probe.touch(self.deg_slot, u as usize);
        self.core[u as usize] = self.deg[u as usize];
        ex.probe.touch(self.core_slot, u as usize);

        // Demote every still-higher-degree neighbour (out then in — the
        // union view of the undirected degree) one bucket down.
        let (out, out_base) = gs.out_list(&mut ex.probe, g, u);
        let (inn, in_base) = gs.in_list(&mut ex.probe, g, u);
        let out_len = out.len();
        for k in 0..out_len + inn.len() {
            let v = if k < out_len {
                ex.probe.touch(gs.out_tgt, out_base + k);
                out[k]
            } else {
                ex.probe.touch(gs.in_tgt, in_base + (k - out_len));
                inn[k - out_len]
            };
            ex.probe.touch(self.deg_slot, v as usize);
            ex.probe.op(1);
            ex.stats.edges_relaxed += 1;
            if self.deg[v as usize] > self.deg[u as usize] {
                let dv = self.deg[v as usize] as usize;
                let pv = self.pos[v as usize];
                ex.probe.touch(self.bin_slot, dv);
                let pw = self.bin[dv];
                ex.probe.touch(self.vert_slot, pw as usize);
                let w = self.vert[pw as usize];
                if v != w {
                    self.vert[pv as usize] = w;
                    self.vert[pw as usize] = v;
                    self.pos[v as usize] = pw;
                    self.pos[w as usize] = pv;
                    ex.probe.touch(self.vert_slot, pv as usize);
                    ex.probe.touch(self.pos_slot, v as usize);
                    ex.probe.touch(self.pos_slot, w as usize);
                }
                self.bin[dv] += 1;
                ex.probe.touch(self.bin_slot, dv);
                self.deg[v as usize] -= 1;
                ex.probe.touch(self.deg_slot, v as usize);
            }
        }
        self.i += 1;
        self.done = self.i == n;
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        // The multiset of core numbers is relabeling-invariant.
        self.core
            .iter()
            .fold(0u64, |a, &c| a.wrapping_add(u64::from(c) * u64::from(c)))
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_u32(std::mem::take(&mut self.deg));
        pool.put_u32(std::mem::take(&mut self.pos));
        pool.put_u32(std::mem::take(&mut self.vert));
        pool.put_u32(std::mem::take(&mut self.core));
        pool.put_u32(std::mem::take(&mut self.bin));
    }
}

/// Computes core numbers by bucket peeling.
pub fn kcore(g: &Graph) -> KcoreResult {
    kcore_with_plan(g, ExecPlan::Serial)
}

/// [`kcore`] under an explicit [`ExecPlan`]; core numbers are identical
/// to the serial run for every plan (only the degree init parallelises).
pub fn kcore_with_plan(g: &Graph, plan: ExecPlan) -> KcoreResult {
    let mut kernel = KcoreKernel::new();
    let mut pool = BufferPool::new();
    let mut ex = Exec::with_plan(NoProbe, &mut pool, plan);
    let _ = crate::run_kernel(
        &mut kernel,
        g,
        &KernelCtx::default(),
        &mut ex,
        &Budget::unlimited(),
    );
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_two_core() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = kcore(&g);
        assert_eq!(r.core, vec![2, 2, 2]);
        assert_eq!(r.degeneracy(), 2);
    }

    #[test]
    fn triangle_with_pendant() {
        // pendant node 3 attached to the triangle: core 1, rest core 2
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let r = kcore(&g);
        assert_eq!(r.core, vec![2, 2, 2, 1]);
    }

    #[test]
    fn empty_graphs() {
        assert_eq!(kcore(&Graph::empty(0)).degeneracy(), 0);
        assert_eq!(kcore(&Graph::empty(5)).core, vec![0; 5]);
    }

    #[test]
    fn parallel_cores_match_serial() {
        let mut edges = vec![(0, 1), (1, 2), (2, 0), (0, 3)];
        for u in 4..20u32 {
            edges.push((u - 1, u));
            edges.push((u, 0));
        }
        let g = Graph::from_edges(20, &edges);
        let serial = kcore(&g);
        for threads in [2, 3, 7] {
            let par = kcore_with_plan(&g, ExecPlan::with_threads(threads));
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_on_degenerate_graphs() {
        for g in [Graph::empty(0), Graph::empty(1), Graph::empty(9)] {
            assert_eq!(kcore(&g), kcore_with_plan(&g, ExecPlan::with_threads(4)));
        }
    }
}
