//! SP — single-source shortest paths by Bellman–Ford.
//!
//! The paper deliberately uses round-based Bellman–Ford on the
//! unweighted graph (not BFS): every round scans *all* edges and relaxes
//! those that improve a distance, stopping when a round changes nothing.
//! With hop distances that is O(Δ·m) for graph diameter Δ — cheap on
//! small-diameter real-world graphs, and its full-edge-scan access
//! pattern is exactly the kind of attribute-array traffic that node
//! ordering accelerates. One `iterate` is one full relaxation round
//! (the final no-change round included, matching the legacy `rounds`
//! count).

use crate::mem::{BufferPool, GraphSlots, Probe, Slot};
use crate::{Exec, Kernel, KernelCtx, NoProbe};
use gorder_core::budget::Budget;
use gorder_graph::{Graph, NodeId};

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Result of a Bellman–Ford run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpResult {
    /// Hop distance from the source (`UNREACHABLE` if not reachable).
    pub dist: Vec<u32>,
    /// Number of full-edge-scan rounds executed (≤ diameter + 1).
    pub rounds: u32,
}

impl SpResult {
    /// Number of reachable nodes (including the source).
    pub fn reached(&self) -> u32 {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count() as u32
    }

    /// Maximum finite distance (the source's eccentricity).
    pub fn eccentricity(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

/// One full Bellman–Ford relaxation round over `dist`; returns whether
/// any distance improved. Shared by the SP and Diam kernels so both
/// exhibit the identical scan/touch pattern.
pub(crate) fn relax_round<P: Probe>(
    g: &Graph,
    gs: &GraphSlots,
    dist_slot: Slot,
    dist: &mut [u32],
    ex: &mut Exec<'_, P>,
) -> bool {
    let mut changed = false;
    for u in g.nodes() {
        ex.probe.touch(dist_slot, u as usize);
        let du = dist[u as usize];
        if du == UNREACHABLE {
            continue;
        }
        let cand = du + 1;
        let (list, base) = gs.out_list(&mut ex.probe, g, u);
        for (k, &v) in list.iter().enumerate() {
            ex.probe.touch(gs.out_tgt, base + k);
            ex.probe.touch(dist_slot, v as usize);
            ex.probe.op(1);
            ex.stats.edges_relaxed += 1;
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                ex.probe.touch(dist_slot, v as usize); // the write
                changed = true;
            }
        }
    }
    ex.probe.op(1);
    changed
}

/// SP as an engine kernel; one `iterate` is one relaxation round.
pub struct SpKernel {
    gs: Option<GraphSlots>,
    dist_slot: Slot,
    dist: Vec<u32>,
    rounds: u32,
    done: bool,
}

impl SpKernel {
    /// A kernel ready for `init`.
    pub fn new() -> Self {
        SpKernel {
            gs: None,
            dist_slot: Slot::new(0),
            dist: Vec::new(),
            rounds: 0,
            done: false,
        }
    }

    /// The shortest-path result (after the run).
    pub fn into_result(self) -> SpResult {
        SpResult {
            dist: self.dist,
            rounds: self.rounds,
        }
    }
}

impl Default for SpKernel {
    fn default() -> Self {
        SpKernel::new()
    }
}

impl<P: Probe> Kernel<P> for SpKernel {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn init(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        if n == 0 {
            self.done = true;
            return;
        }
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.dist_slot = ex.probe.alloc(n, 4);
        self.dist = ex.pool.take_u32(n, UNREACHABLE);
        let source = ctx.source_for(g);
        self.dist[source as usize] = 0;
        ex.probe.touch(self.dist_slot, source as usize);
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.done
    }

    fn iterate(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        self.rounds += 1;
        if !relax_round(g, &gs, self.dist_slot, &mut self.dist, ex) {
            self.done = true;
        }
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        // Distances from a mapped source are invariant under relabeling.
        self.dist
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .fold(0u64, |a, &d| a.wrapping_add(u64::from(d)).wrapping_add(1))
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_u32(std::mem::take(&mut self.dist));
    }
}

/// Round-based Bellman–Ford from `source` over unit edge weights.
pub fn bellman_ford(g: &Graph, source: NodeId) -> SpResult {
    let mut kernel = SpKernel::new();
    let ctx = KernelCtx {
        source: Some(source),
        ..Default::default()
    };
    let mut pool = BufferPool::new();
    let mut ex = Exec::new(NoProbe, &mut pool);
    let _ = crate::run_kernel(&mut kernel, g, &ctx, &mut ex, &Budget::unlimited());
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3]);
        assert_eq!(r.eccentricity(), 3);
        assert_eq!(r.reached(), 4);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(3, &[(1, 2)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, UNREACHABLE, UNREACHABLE]);
        assert_eq!(r.reached(), 1);
        assert_eq!(r.eccentricity(), 0);
    }

    #[test]
    fn empty() {
        let r = bellman_ford(&Graph::empty(0), 0);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn rounds_count_includes_settling_round() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bellman_ford(&g, 0);
        // ascending path settles in round 1; round 2 confirms no change
        assert_eq!(r.rounds, 2);
    }
}
