//! SCC — strongly connected components via Tarjan's algorithm.
//!
//! Iterative formulation of Tarjan 1972 (the replication's choice): one
//! DFS pass maintaining discovery indices and low-links, components
//! popped off an auxiliary stack when a root is found. Linear in n + m.
//! One `iterate` explores the full DFS tree of one restart root.

use crate::mem::{BufferPool, DenseBitset, GraphSlots, Probe, Slot};
use crate::{Exec, Kernel, KernelCtx, NoProbe};
use gorder_core::budget::Budget;
use gorder_graph::{Graph, NodeId};

/// Result of an SCC decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccResult {
    /// `component[u]` = dense component id (0-based, reverse topological
    /// discovery order as in Tarjan).
    pub component: Vec<u32>,
    /// Size of each component.
    pub sizes: Vec<u32>,
}

impl SccResult {
    /// Number of strongly connected components.
    pub fn count(&self) -> u32 {
        self.sizes.len() as u32
    }

    /// Size of the largest component (0 on the empty graph).
    pub fn largest(&self) -> u32 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

const UNVISITED: u32 = u32::MAX;

/// SCC as an engine kernel; one `iterate` runs Tarjan from one restart
/// root.
pub struct SccKernel {
    gs: Option<GraphSlots>,
    index_slot: Slot,
    lowlink_slot: Slot,
    onstack_slot: Slot,
    comp_slot: Slot,
    stack_slot: Slot,
    frames_slot: Slot,
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: DenseBitset,
    component: Vec<u32>,
    sizes: Vec<u32>,
    stack: Vec<NodeId>,
    frames: Vec<(NodeId, u32)>,
    next_index: u32,
    next_root: u32,
    done: bool,
}

impl SccKernel {
    /// A kernel ready for `init`.
    pub fn new() -> Self {
        SccKernel {
            gs: None,
            index_slot: Slot::new(0),
            lowlink_slot: Slot::new(0),
            onstack_slot: Slot::new(0),
            comp_slot: Slot::new(0),
            stack_slot: Slot::new(0),
            frames_slot: Slot::new(0),
            index: Vec::new(),
            lowlink: Vec::new(),
            on_stack: DenseBitset::default(),
            component: Vec::new(),
            sizes: Vec::new(),
            stack: Vec::new(),
            frames: Vec::new(),
            next_index: 0,
            next_root: 0,
            done: false,
        }
    }

    /// The decomposition result (after the run).
    pub fn into_result(self) -> SccResult {
        SccResult {
            component: self.component,
            sizes: self.sizes,
        }
    }
}

impl Default for SccKernel {
    fn default() -> Self {
        SccKernel::new()
    }
}

impl<P: Probe> Kernel<P> for SccKernel {
    fn name(&self) -> &'static str {
        "SCC"
    }

    fn init(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.index_slot = ex.probe.alloc(n, 4);
        self.lowlink_slot = ex.probe.alloc(n, 4);
        self.on_stack = ex.pool.take_bitset(n);
        self.onstack_slot = ex.probe.alloc(self.on_stack.words_len(), 8);
        self.comp_slot = ex.probe.alloc(n, 4);
        self.stack_slot = ex.probe.alloc(n, 4);
        self.frames_slot = ex.probe.alloc(n, 8);
        self.index = ex.pool.take_u32(n, UNVISITED);
        self.lowlink = ex.pool.take_u32(n, 0);
        self.component = ex.pool.take_u32(n, UNVISITED);
        self.sizes = ex.pool.take_u32(0, 0);
        self.stack = ex.pool.take_nodes(n);
        self.frames = ex.pool.take_pairs(n);
        self.done = n == 0;
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.done
    }

    fn iterate(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        let n = g.n();

        // Find the next unvisited root in ascending id order.
        let root = loop {
            if self.next_root >= n {
                self.done = true;
                return;
            }
            let r = self.next_root;
            self.next_root += 1;
            ex.probe.touch(self.index_slot, r as usize);
            if self.index[r as usize] == UNVISITED {
                break r;
            }
        };

        self.frames.push((root, 0));
        ex.probe.touch(self.frames_slot, self.frames.len() - 1);
        self.index[root as usize] = self.next_index;
        self.lowlink[root as usize] = self.next_index;
        ex.probe.touch(self.lowlink_slot, root as usize);
        self.next_index += 1;
        self.stack.push(root);
        ex.probe.touch(self.stack_slot, self.stack.len() - 1);
        self.on_stack.set(root as usize);
        ex.probe
            .touch(self.onstack_slot, DenseBitset::word_of(root as usize));
        ex.stats.frontier_pushes += 1;

        while !self.frames.is_empty() {
            ex.stats.note_frontier_peak(self.frames.len());
            let top = self.frames.len() - 1;
            ex.probe.touch(self.frames_slot, top);
            let (u, child) = self.frames[top];
            let (list, base) = gs.out_list(&mut ex.probe, g, u);
            if (child as usize) < list.len() {
                let k = child as usize;
                let v = list[k];
                self.frames[top].1 = child + 1;
                ex.probe.touch(gs.out_tgt, base + k);
                ex.probe.touch(self.index_slot, v as usize);
                ex.probe.op(1);
                ex.stats.edges_relaxed += 1;
                if self.index[v as usize] == UNVISITED {
                    self.index[v as usize] = self.next_index;
                    self.lowlink[v as usize] = self.next_index;
                    ex.probe.touch(self.index_slot, v as usize);
                    ex.probe.touch(self.lowlink_slot, v as usize);
                    self.next_index += 1;
                    self.stack.push(v);
                    ex.probe.touch(self.stack_slot, self.stack.len() - 1);
                    self.on_stack.set(v as usize);
                    ex.probe
                        .touch(self.onstack_slot, DenseBitset::word_of(v as usize));
                    self.frames.push((v, 0));
                    ex.probe.touch(self.frames_slot, self.frames.len() - 1);
                    ex.stats.frontier_pushes += 1;
                } else {
                    ex.probe
                        .touch(self.onstack_slot, DenseBitset::word_of(v as usize));
                    if self.on_stack.get(v as usize) {
                        self.lowlink[u as usize] =
                            self.lowlink[u as usize].min(self.index[v as usize]);
                        ex.probe.touch(self.lowlink_slot, u as usize);
                    }
                }
            } else {
                self.frames.pop();
                if let Some(&(parent, _)) = self.frames.last() {
                    self.lowlink[parent as usize] =
                        self.lowlink[parent as usize].min(self.lowlink[u as usize]);
                    ex.probe.touch(self.lowlink_slot, parent as usize);
                    ex.probe.touch(self.lowlink_slot, u as usize);
                }
                ex.probe.touch(self.lowlink_slot, u as usize);
                ex.probe.touch(self.index_slot, u as usize);
                if self.lowlink[u as usize] == self.index[u as usize] {
                    // u is a root: pop its component
                    let id = self.sizes.len() as u32;
                    let mut size = 0u32;
                    loop {
                        let w = self.stack.pop().expect("tarjan stack underflow");
                        ex.probe.touch(self.stack_slot, self.stack.len());
                        self.on_stack.clear_bit(w as usize);
                        ex.probe
                            .touch(self.onstack_slot, DenseBitset::word_of(w as usize));
                        self.component[w as usize] = id;
                        ex.probe.touch(self.comp_slot, w as usize);
                        size += 1;
                        if w == u {
                            break;
                        }
                    }
                    self.sizes.push(size);
                }
            }
        }
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        // Component count and the multiset of sizes are invariant under
        // relabeling; Σ size² is a cheap multiset fingerprint.
        self.sizes.iter().fold(self.sizes.len() as u64, |acc, &s| {
            acc.wrapping_add(u64::from(s) * u64::from(s))
        })
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_u32(std::mem::take(&mut self.index));
        pool.put_u32(std::mem::take(&mut self.lowlink));
        pool.put_u32(std::mem::take(&mut self.component));
        pool.put_u32(std::mem::take(&mut self.sizes));
        pool.put_bitset(std::mem::take(&mut self.on_stack));
        pool.put_nodes(std::mem::take(&mut self.stack));
        pool.put_pairs(std::mem::take(&mut self.frames));
    }
}

/// Computes strongly connected components with iterative Tarjan.
pub fn scc(g: &Graph) -> SccResult {
    let mut kernel = SccKernel::new();
    let mut pool = BufferPool::new();
    let mut ex = Exec::new(NoProbe, &mut pool);
    let _ = crate::run_kernel(
        &mut kernel,
        g,
        &KernelCtx::default(),
        &mut ex,
        &Budget::unlimited(),
    );
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = scc(&g);
        assert_eq!(r.count(), 1);
        assert_eq!(r.largest(), 4);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // cycle {0,1,2}, cycle {3,4}, bridge 2 -> 3
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]);
        let r = scc(&g);
        assert_eq!(r.count(), 2);
        assert_eq!(r.component[0], r.component[1]);
        assert_eq!(r.component[3], r.component[4]);
        assert_ne!(r.component[0], r.component[3]);
    }

    #[test]
    fn empty_and_isolated() {
        assert_eq!(scc(&Graph::empty(0)).count(), 0);
        let r = scc(&Graph::empty(3));
        assert_eq!(r.count(), 3);
        assert_eq!(r.largest(), 1);
    }
}
