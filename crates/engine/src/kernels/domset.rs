//! DS — greedy dominating set.
//!
//! Repeatedly select the node covering the most still-uncovered nodes,
//! add it to the dominating set, and mark it and its out-neighbours
//! covered; every node must end up covered. The classic greedy achieves
//! an `H(Δ+1)` approximation. Selection uses a lazy max-heap: gains only
//! decrease, so a popped entry whose recorded gain is stale is re-pushed
//! with its current gain instead of being acted on. One `iterate`
//! performs one selection (including any stale re-queues and zero-gain
//! pops preceding it).

use crate::mem::{
    probe_heap_pop, probe_heap_push, BufferPool, DenseBitset, GraphSlots, Probe, Slot,
};
use crate::{Exec, Kernel, KernelCtx, NoProbe};
use gorder_core::budget::Budget;
use gorder_graph::{Graph, NodeId};
use std::collections::BinaryHeap;

/// Result of the greedy dominating-set construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomSetResult {
    /// Selected nodes, in selection order.
    pub set: Vec<NodeId>,
    /// `covered_by[u]` = the selected node that first covered `u`.
    pub covered_by: Vec<NodeId>,
}

impl DomSetResult {
    /// Size of the dominating set.
    pub fn size(&self) -> u32 {
        self.set.len() as u32
    }
}

/// DS as an engine kernel; one `iterate` selects one set member.
pub struct DsKernel {
    gs: Option<GraphSlots>,
    gain_slot: Slot,
    covered_slot: Slot,
    coveredby_slot: Slot,
    heap_slot: Slot,
    gain: Vec<u32>,
    covered: DenseBitset,
    covered_by: Vec<NodeId>,
    set: Vec<NodeId>,
    newly: Vec<NodeId>,
    heap: BinaryHeap<(u32, NodeId)>,
    remaining: usize,
}

impl DsKernel {
    /// A kernel ready for `init`.
    pub fn new() -> Self {
        DsKernel {
            gs: None,
            gain_slot: Slot::new(0),
            covered_slot: Slot::new(0),
            coveredby_slot: Slot::new(0),
            heap_slot: Slot::new(0),
            gain: Vec::new(),
            covered: DenseBitset::default(),
            covered_by: Vec::new(),
            set: Vec::new(),
            newly: Vec::new(),
            heap: BinaryHeap::new(),
            remaining: 0,
        }
    }

    /// The dominating-set result (after the run).
    pub fn into_result(self) -> DomSetResult {
        DomSetResult {
            set: self.set,
            covered_by: self.covered_by,
        }
    }
}

impl Default for DsKernel {
    fn default() -> Self {
        DsKernel::new()
    }
}

impl<P: Probe> Kernel<P> for DsKernel {
    fn name(&self) -> &'static str {
        "DS"
    }

    fn init(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.gain_slot = ex.probe.alloc(n, 4);
        self.covered = ex.pool.take_bitset(n);
        self.covered_slot = ex.probe.alloc(self.covered.words_len(), 8);
        self.coveredby_slot = ex.probe.alloc(n, 4);
        self.heap_slot = ex.probe.alloc(n.max(1), 8);
        self.gain = ex.pool.take_u32(n, 0);
        for u in g.nodes() {
            ex.probe.touch(gs.out_off, u as usize);
            ex.probe.touch(gs.out_off, u as usize + 1);
            ex.probe.touch(self.gain_slot, u as usize);
            self.gain[u as usize] = g.out_degree(u) + 1;
        }
        self.covered_by = ex.pool.take_u32(n, NodeId::MAX);
        self.set = ex.pool.take_nodes(n);
        self.heap = BinaryHeap::with_capacity(n);
        for u in 0..n as u32 {
            self.heap.push((self.gain[u as usize], u));
            probe_heap_push(&mut ex.probe, self.heap_slot, self.heap.len() - 1);
            ex.stats.frontier_pushes += 1;
        }
        self.remaining = n;
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.remaining == 0
    }

    fn iterate(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        loop {
            let (claimed, u) = self
                .heap
                .pop()
                .expect("uncovered nodes imply positive gains");
            probe_heap_pop(&mut ex.probe, self.heap_slot, self.heap.len());
            ex.probe.touch(self.gain_slot, u as usize);
            let current = self.gain[u as usize];
            if claimed != current {
                self.heap.push((current, u)); // stale entry: requeue with true gain
                probe_heap_push(&mut ex.probe, self.heap_slot, self.heap.len() - 1);
                continue;
            }
            if current == 0 {
                continue; // everything u covers is already covered
            }
            self.set.push(u);
            // Cover u and its out-neighbours; each newly covered node w
            // lowers the gain of every potential coverer of w (w itself
            // and in(w)).
            self.newly.clear();
            ex.probe
                .touch(self.covered_slot, DenseBitset::word_of(u as usize));
            if !self.covered.get(u as usize) {
                self.newly.push(u);
            }
            let (list, base) = gs.out_list(&mut ex.probe, g, u);
            for (k, &w) in list.iter().enumerate() {
                ex.probe.touch(gs.out_tgt, base + k);
                ex.probe
                    .touch(self.covered_slot, DenseBitset::word_of(w as usize));
                ex.stats.edges_relaxed += 1;
                if !self.covered.get(w as usize) {
                    self.newly.push(w);
                }
            }
            ex.stats.note_frontier_peak(self.newly.len());
            for i in 0..self.newly.len() {
                let w = self.newly[i];
                self.covered.set(w as usize);
                ex.probe
                    .touch(self.covered_slot, DenseBitset::word_of(w as usize));
                ex.probe.touch(self.coveredby_slot, w as usize);
                self.covered_by[w as usize] = u;
                self.remaining -= 1;
                self.gain[w as usize] -= 1;
                ex.probe.touch(self.gain_slot, w as usize);
                let (in_list, in_base) = gs.in_list(&mut ex.probe, g, w);
                for (k, &z) in in_list.iter().enumerate() {
                    ex.probe.touch(gs.in_tgt, in_base + k);
                    self.gain[z as usize] -= 1;
                    ex.probe.touch(self.gain_slot, z as usize);
                    ex.probe.op(1);
                    ex.stats.edges_relaxed += 1;
                }
            }
            return;
        }
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        // Greedy tie-breaking depends on ids, so the exact set is not
        // relabeling-invariant; the size is stable enough to be the
        // reported quantity (and what the paper's runtime depends on).
        self.set.len() as u64
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_u32(std::mem::take(&mut self.gain));
        pool.put_u32(std::mem::take(&mut self.covered_by));
        pool.put_bitset(std::mem::take(&mut self.covered));
        pool.put_nodes(std::mem::take(&mut self.set));
        pool.put_nodes(std::mem::take(&mut self.newly));
    }
}

/// Runs the greedy dominating-set algorithm.
pub fn dominating_set(g: &Graph) -> DomSetResult {
    let mut kernel = DsKernel::new();
    let mut pool = BufferPool::new();
    let mut ex = Exec::new(NoProbe, &mut pool);
    let _ = crate::run_kernel(
        &mut kernel,
        g,
        &KernelCtx::default(),
        &mut ex,
        &Budget::unlimited(),
    );
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_needs_one() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = dominating_set(&g);
        assert_eq!(r.set, vec![0]);
    }

    #[test]
    fn isolated_nodes_must_join() {
        let g = Graph::empty(4);
        let r = dominating_set(&g);
        assert_eq!(r.size(), 4);
    }

    #[test]
    fn directed_coverage_only_via_out_edges() {
        // 1 -> 0: selecting 1 covers both; selecting 0 covers only 0.
        let g = Graph::from_edges(2, &[(1, 0)]);
        let r = dominating_set(&g);
        assert_eq!(r.set, vec![1]);
    }

    #[test]
    fn empty() {
        assert_eq!(dominating_set(&Graph::empty(0)).size(), 0);
    }
}
