//! Diam — diameter lower bound by sampled eccentricities.
//!
//! Exact diameters need all-pairs BFS; the paper's experiment instead
//! lower-bounds the diameter by running the SP kernel's round-based
//! Bellman–Ford from a handful of random sources and taking the maximum
//! eccentricity observed. One `iterate` processes one source to
//! completion (all its relaxation rounds), reusing the distance buffer
//! across sources.

use crate::kernels::sp::{relax_round, UNREACHABLE};
use crate::mem::{BufferPool, GraphSlots, NoProbe, Probe, Slot};
use crate::{parallel, Exec, ExecPlan, Kernel, KernelCtx};
use gorder_core::budget::Budget;
use gorder_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of the sampled-eccentricity diameter estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiameterResult {
    /// Max eccentricity over the sampled sources — a diameter lower
    /// bound.
    pub lower_bound: u32,
    /// The sources actually sampled.
    pub sources: Vec<NodeId>,
}

/// Diam as an engine kernel; one `iterate` fully relaxes one source.
pub struct DiamKernel {
    gs: Option<GraphSlots>,
    dist_slot: Slot,
    dist: Vec<u32>,
    sources: Vec<NodeId>,
    preset: Option<Vec<NodeId>>,
    next_src: usize,
    best: u32,
    done: bool,
}

impl DiamKernel {
    /// A kernel that samples sources from the context's seed.
    pub fn new() -> Self {
        DiamKernel {
            gs: None,
            dist_slot: Slot::new(0),
            dist: Vec::new(),
            sources: Vec::new(),
            preset: None,
            next_src: 0,
            best: 0,
            done: false,
        }
    }

    /// A kernel that sweeps exactly the given sources instead of
    /// sampling.
    pub fn with_sources(sources: Vec<NodeId>) -> Self {
        DiamKernel {
            preset: Some(sources),
            ..DiamKernel::new()
        }
    }

    /// The estimate (after the run).
    pub fn into_result(self) -> DiameterResult {
        DiameterResult {
            lower_bound: self.best,
            sources: self.sources,
        }
    }
}

impl Default for DiamKernel {
    fn default() -> Self {
        DiamKernel::new()
    }
}

impl<P: Probe> Kernel<P> for DiamKernel {
    fn name(&self) -> &'static str {
        "Diam"
    }

    fn init(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let n = g.n() as usize;
        if n == 0 {
            self.sources = self.preset.take().unwrap_or_default();
            self.done = true;
            return;
        }
        let gs = GraphSlots::new(&mut ex.probe, g);
        self.dist_slot = ex.probe.alloc(n, 4);
        self.dist = ex.pool.take_u32(n, UNREACHABLE);
        self.sources = self.preset.take().unwrap_or_else(|| {
            let mut rng = StdRng::seed_from_u64(ctx.seed);
            (0..ctx.diameter_samples)
                .map(|_| rng.gen_range(0..g.n()))
                .collect()
        });
        self.gs = Some(gs);
    }

    fn converged(&self) -> bool {
        self.done || self.next_src >= self.sources.len()
    }

    fn iterate(&mut self, g: &Graph, _ctx: &KernelCtx, ex: &mut Exec<'_, P>) {
        let gs = self.gs.expect("init before iterate");
        let threads = ex.par_threads();
        if threads > 1 && self.sources.len() - self.next_src > 1 {
            // Parallel sweep batch: per-source sweeps are fully
            // independent (each starts from a fresh distance fill), so a
            // batch of up to `threads` sources runs concurrently, each
            // worker driving the shared `relax_round` against its own
            // buffers. Per-source round and edge counts are exactly the
            // serial ones; the max-eccentricity and edge-count folds are
            // order-insensitive. The extra `iterations` increments keep
            // the total equal to the number of sources, at the cost of
            // budget checks landing on batch boundaries.
            let batch_end = (self.next_src + threads).min(self.sources.len());
            let batch = &self.sources[self.next_src..batch_end];
            let n = g.n() as usize;
            let results = parallel::run_tasks(
                batch
                    .iter()
                    .map(|&s| {
                        move || {
                            let mut pool = BufferPool::new();
                            let mut sub = Exec::new(NoProbe, &mut pool);
                            let sub_gs = GraphSlots::new(&mut sub.probe, g);
                            let dist_slot = sub.probe.alloc(n, 4);
                            let mut dist = vec![UNREACHABLE; n];
                            dist[s as usize] = 0;
                            while relax_round(g, &sub_gs, dist_slot, &mut dist, &mut sub) {}
                            let ecc = dist
                                .iter()
                                .copied()
                                .filter(|&d| d != UNREACHABLE)
                                .max()
                                .unwrap_or(0);
                            (ecc, sub.stats.edges_relaxed)
                        }
                    })
                    .collect(),
            );
            for (t, ((ecc, edges), busy)) in results.into_iter().enumerate() {
                self.best = self.best.max(ecc);
                ex.stats.edges_relaxed += edges;
                ex.stats.note_thread_busy(t, busy);
            }
            ex.stats.iterations += (batch_end - self.next_src - 1) as u64;
            self.next_src = batch_end;
            return;
        }
        let s = self.sources[self.next_src];
        // Fresh fill is bookkeeping between sub-runs, not kernel traffic.
        self.dist.fill(UNREACHABLE);
        self.dist[s as usize] = 0;
        ex.probe.touch(self.dist_slot, s as usize);
        while relax_round(g, &gs, self.dist_slot, &mut self.dist, ex) {}
        let ecc = self
            .dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0);
        self.best = self.best.max(ecc);
        self.next_src += 1;
    }

    fn finish(&mut self, _g: &Graph, _ctx: &KernelCtx, _ex: &mut Exec<'_, P>) -> u64 {
        u64::from(self.best)
    }

    fn reclaim(&mut self, pool: &mut BufferPool) {
        pool.put_u32(std::mem::take(&mut self.dist));
        pool.put_nodes(std::mem::take(&mut self.sources));
    }
}

/// Diameter lower bound from `samples` random sources (seeded RNG).
pub fn diameter(g: &Graph, samples: u32, seed: u64) -> DiameterResult {
    diameter_with_plan(g, samples, seed, ExecPlan::Serial)
}

/// [`diameter`] under an explicit [`ExecPlan`]; the bound and sampled
/// sources are identical to the serial run for every plan.
pub fn diameter_with_plan(g: &Graph, samples: u32, seed: u64, plan: ExecPlan) -> DiameterResult {
    let mut kernel = DiamKernel::new();
    let ctx = KernelCtx {
        diameter_samples: samples,
        seed,
        ..Default::default()
    };
    let mut pool = BufferPool::new();
    let mut ex = Exec::with_plan(NoProbe, &mut pool, plan);
    let _ = crate::run_kernel(&mut kernel, g, &ctx, &mut ex, &Budget::unlimited());
    kernel.into_result()
}

/// Diameter lower bound sweeping exactly the given sources.
pub fn diameter_from_sources(g: &Graph, sources: &[NodeId]) -> DiameterResult {
    let mut kernel = DiamKernel::with_sources(sources.to_vec());
    let mut pool = BufferPool::new();
    let mut ex = Exec::new(NoProbe, &mut pool);
    let _ = crate::run_kernel(
        &mut kernel,
        g,
        &KernelCtx::default(),
        &mut ex,
        &Budget::unlimited(),
    );
    kernel.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_diameter_found_from_endpoint() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = diameter_from_sources(&g, &[0]);
        assert_eq!(r.lower_bound, 3);
        assert_eq!(r.sources, vec![0]);
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let a = diameter(&g, 4, 7);
        let b = diameter(&g, 4, 7);
        assert_eq!(a, b);
        assert!(a.lower_bound <= 5);
        assert_eq!(a.sources.len(), 4);
    }

    #[test]
    fn more_samples_never_lower() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 3), (3, 4)]);
        let few = diameter(&g, 1, 3).lower_bound;
        let many = diameter(&g, 8, 3).lower_bound;
        assert!(many >= few);
    }

    #[test]
    fn empty_graph() {
        let r = diameter(&Graph::empty(0), 4, 1);
        assert_eq!(r.lower_bound, 0);
        assert!(r.sources.is_empty());
    }

    #[test]
    fn parallel_estimate_matches_serial() {
        let mut edges: Vec<(u32, u32)> = (0..15).map(|u| (u, u + 1)).collect();
        edges.push((15, 0));
        edges.push((3, 11));
        let g = Graph::from_edges(16, &edges);
        let serial = diameter(&g, 9, 42);
        for threads in [2, 3, 7] {
            let par = diameter_with_plan(&g, 9, 42, ExecPlan::with_threads(threads));
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_on_degenerate_graphs() {
        for g in [Graph::empty(0), Graph::empty(1), Graph::empty(4)] {
            let serial = diameter(&g, 5, 3);
            let par = diameter_with_plan(&g, 5, 3, ExecPlan::with_threads(4));
            assert_eq!(serial, par);
        }
    }
}
