//! Per-run kernel metrics.
//!
//! Wall time alone cannot attribute a reordering speedup: two runs with
//! identical work can differ only in cache behaviour, and two runs with
//! identical caches can differ in work (restarts, extra rounds). A
//! [`KernelStats`] record pins down the work side — iterations, edges
//! relaxed, frontier churn — plus a coarse phase breakdown, so the bench
//! harness and the CLI can report both axes for every cell.

/// Counters and phase timings collected by the engine driver and the
/// kernels while a run executes.
///
/// Counters are cumulative over the whole run (all restarts / rounds /
/// sampled sources). Timings are wall-clock seconds measured by the
/// driver; under a cache-simulator probe they reflect simulation time,
/// not modelled hardware time, and are only useful relatively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Engine steps executed: calls to `Kernel::iterate`. The unit is
    /// kernel-specific (BFS: frontier levels + tree seedings, SP:
    /// Bellman–Ford rounds, PR: power iterations, Kcore: peeled nodes,
    /// …) but is stable for a given kernel, so it composes with
    /// node-capped budgets.
    pub iterations: u64,
    /// Edges scanned/relaxed across the whole run. For full-sweep
    /// kernels (NQ, BFS, DFS, SCC) this equals `m`; for iterative ones
    /// (SP, PR, Diam) it is `m × rounds`-shaped.
    pub edges_relaxed: u64,
    /// Nodes pushed onto a frontier/work queue over the whole run.
    pub frontier_pushes: u64,
    /// Largest single frontier level observed (peak occupancy).
    pub frontier_peak: u64,
    /// Seconds spent in `Kernel::init` (allocation + seeding).
    pub init_secs: f64,
    /// Seconds spent in the iterate loop.
    pub compute_secs: f64,
    /// Seconds spent in `Kernel::finish` (checksum folding).
    pub finish_secs: f64,
    /// Worker threads the execution plan granted the kernel (1 for
    /// serial runs and for probed runs, which always execute serially).
    pub threads_used: u32,
    /// Cumulative busy seconds per worker thread across all parallel
    /// sections of the run, indexed by worker. Empty for serial runs;
    /// the spread between entries makes partition imbalance observable.
    pub thread_busy_secs: Vec<f64>,
    /// Whether a worker panic forced this run onto the degradation
    /// ladder's serial rung: the parallel attempt was discarded and the
    /// whole cell re-ran serially (so every counter above describes the
    /// serial retry, not the aborted attempt).
    pub degraded_serial: bool,
}

impl KernelStats {
    /// Records a frontier level size, keeping the running maximum.
    pub fn note_frontier_peak(&mut self, level_len: usize) {
        self.frontier_peak = self.frontier_peak.max(level_len as u64);
    }

    /// Accumulates `secs` of busy time for worker `thread`, growing the
    /// per-thread table as needed.
    pub fn note_thread_busy(&mut self, thread: usize, secs: f64) {
        if self.thread_busy_secs.len() <= thread {
            self.thread_busy_secs.resize(thread + 1, 0.0);
        }
        self.thread_busy_secs[thread] += secs;
    }

    /// Total measured seconds across all three phases.
    pub fn total_secs(&self) -> f64 {
        self.init_secs + self.compute_secs + self.finish_secs
    }

    /// Adds this run's counters and phase spans to the process-wide
    /// [`gorder_obs::global`] registry under `kernel.<name>.*`, so a
    /// trace sink can export per-kernel aggregates at end of run without
    /// threading a registry through every driver.
    pub fn export(&self, kernel: &str) {
        let reg = gorder_obs::global();
        let key = |suffix: &str| format!("kernel.{kernel}.{suffix}");
        reg.counter_add(&key("iterations"), self.iterations);
        reg.counter_add(&key("edges_relaxed"), self.edges_relaxed);
        reg.counter_add(&key("frontier_pushes"), self.frontier_pushes);
        reg.span_record(&key("init"), self.init_secs);
        reg.span_record(&key("compute"), self.compute_secs);
        reg.span_record(&key("finish"), self.finish_secs);
        reg.gauge_set(&key("frontier_peak"), self.frontier_peak as f64);
        reg.gauge_set(&key("threads_used"), f64::from(self.threads_used));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = KernelStats::default();
        assert_eq!(s.iterations, 0);
        assert_eq!(s.edges_relaxed, 0);
        assert_eq!(s.frontier_pushes, 0);
        assert_eq!(s.frontier_peak, 0);
        assert_eq!(s.total_secs(), 0.0);
    }

    #[test]
    fn frontier_peak_keeps_maximum() {
        let mut s = KernelStats::default();
        s.note_frontier_peak(3);
        s.note_frontier_peak(7);
        s.note_frontier_peak(2);
        assert_eq!(s.frontier_peak, 7);
    }
}
