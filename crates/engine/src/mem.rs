//! Execution-memory primitives shared by every kernel.
//!
//! Three concerns live here:
//!
//! * **Probes** — the [`Probe`] trait abstracts *observation* of memory
//!   traffic. Kernels report every array they allocate and every element
//!   they touch; [`NoProbe`] compiles all of it away for wall-clock
//!   runs, while the cache simulator plugs in a tracing probe so the
//!   exact same kernel code drives the cache model. This is what removes
//!   the third hand-rolled copy of each traversal from `cachesim`.
//! * **Reusable state** — [`Frontier`] and [`DenseBitset`] replace the
//!   per-kernel queue/bitset reinventions, and [`BufferPool`] recycles
//!   their backing storage so repeated runs (bench reps, grid cells)
//!   stop allocating in the hot path.
//! * **Graph access** — [`GraphSlots`] pairs the CSR arrays with their
//!   probe handles so adjacency scans record offset and target touches
//!   uniformly.

use gorder_graph::{Graph, NodeId};

/// Opaque handle to a probe-registered array.
///
/// Returned by [`Probe::alloc`]; kernels store it and pass it back to
/// [`Probe::touch`]. For [`NoProbe`] it carries no meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot(u32);

impl Slot {
    /// Wraps a probe-side array index.
    pub fn new(index: u32) -> Self {
        Slot(index)
    }

    /// The probe-side array index this handle wraps.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Observer of a kernel's memory behaviour.
///
/// Kernels are generic over `P: Probe` and are monomorphised per probe:
/// with [`NoProbe`] every call inlines to nothing (wall-clock runs pay
/// zero overhead), with a tracing probe every logical array access is
/// forwarded to the cache simulator.
pub trait Probe {
    /// Whether kernels may take their parallel code paths under this
    /// probe. Defaults to `false`: a tracing probe observes a single
    /// sequential access stream, so splitting work across threads would
    /// interleave (and thus corrupt) the trace. Only probes that record
    /// nothing ([`NoProbe`]) opt in.
    const PARALLEL_SAFE: bool = false;

    /// Registers a logical array of `len` elements of `elem_bytes`
    /// bytes each; returns the handle used for later touches.
    fn alloc(&mut self, len: usize, elem_bytes: u64) -> Slot;
    /// Records an access to element `i` of the array behind `slot`.
    fn touch(&mut self, slot: Slot, i: usize);
    /// Records `n` non-memory operations (arithmetic / compare).
    fn op(&mut self, n: u64);
    /// A fresh probe equivalent to this one, for retrying a run after a
    /// worker panic (the original probe is consumed by the failed
    /// attempt). `None` — the default — means the run cannot be retried:
    /// stateful probes have already absorbed part of the aborted
    /// attempt's access stream, so a retry would record garbage.
    fn duplicate(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// The zero-cost probe used for wall-clock execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const PARALLEL_SAFE: bool = true;

    #[inline(always)]
    fn alloc(&mut self, _len: usize, _elem_bytes: u64) -> Slot {
        Slot(0)
    }

    #[inline(always)]
    fn touch(&mut self, _slot: Slot, _i: usize) {}

    #[inline(always)]
    fn op(&mut self, _n: u64) {}

    fn duplicate(&self) -> Option<Self> {
        Some(NoProbe)
    }
}

/// Probe handles for a graph's CSR arrays (out/in offsets and targets),
/// registered in a fixed order so traced address layouts are stable.
#[derive(Debug, Clone, Copy)]
pub struct GraphSlots {
    /// Out-offset array (`n + 1` entries of 8 bytes).
    pub out_off: Slot,
    /// Out-target array (`m` entries of 4 bytes).
    pub out_tgt: Slot,
    /// In-offset array (`n + 1` entries of 8 bytes).
    pub in_off: Slot,
    /// In-target array (`m` entries of 4 bytes).
    pub in_tgt: Slot,
}

impl GraphSlots {
    /// Registers the four CSR arrays with `probe`.
    pub fn new<P: Probe>(probe: &mut P, g: &Graph) -> Self {
        let n = g.n() as usize;
        let m = g.m() as usize;
        GraphSlots {
            out_off: probe.alloc(n + 1, 8),
            out_tgt: probe.alloc(m, 4),
            in_off: probe.alloc(n + 1, 8),
            in_tgt: probe.alloc(m, 4),
        }
    }

    /// Out-neighbour slice of `u`, touching both bounding offsets.
    /// Returns the slice and its base index into the target array so
    /// callers can touch `out_tgt` per element scanned.
    pub fn out_list<'g, P: Probe>(
        &self,
        probe: &mut P,
        g: &'g Graph,
        u: NodeId,
    ) -> (&'g [NodeId], usize) {
        let (off, tgt) = g.out_csr();
        probe.touch(self.out_off, u as usize);
        probe.touch(self.out_off, u as usize + 1);
        let a = off[u as usize] as usize;
        let b = off[u as usize + 1] as usize;
        (&tgt[a..b], a)
    }

    /// In-neighbour slice of `u`; see [`GraphSlots::out_list`].
    pub fn in_list<'g, P: Probe>(
        &self,
        probe: &mut P,
        g: &'g Graph,
        u: NodeId,
    ) -> (&'g [NodeId], usize) {
        let (off, tgt) = g.in_csr();
        probe.touch(self.in_off, u as usize);
        probe.touch(self.in_off, u as usize + 1);
        let a = off[u as usize] as usize;
        let b = off[u as usize + 1] as usize;
        (&tgt[a..b], a)
    }
}

/// Records the access pattern of a binary-heap sift-up after a push at
/// `last`: one touch per ancestor on the path to the root.
pub fn probe_heap_push<P: Probe>(probe: &mut P, heap: Slot, last: usize) {
    let mut p = last;
    loop {
        probe.touch(heap, p);
        probe.op(1);
        if p == 0 {
            break;
        }
        p = (p - 1) / 2;
    }
}

/// Records the access pattern of a binary-heap pop from a heap that had
/// `len` elements after the pop: a root-to-leaf sift-down walk.
pub fn probe_heap_pop<P: Probe>(probe: &mut P, heap: Slot, len: usize) {
    let mut p = 0usize;
    while p < len {
        probe.touch(heap, p);
        probe.op(1);
        p = 2 * p + 1;
    }
}

/// Level-synchronous work queue for BFS-style kernels.
///
/// Visited nodes accumulate in one `Vec`, which doubles as the visit
/// order: the *current level* is the window `[head, level_end)`, pushes
/// land after `level_end` (the next level), and [`Frontier::advance`]
/// slides the window forward without moving any elements.
#[derive(Debug, Clone, Default)]
pub struct Frontier {
    items: Vec<NodeId>,
    head: usize,
    level_end: usize,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// Empties the frontier, keeping its allocation, and reserves room
    /// for `capacity` nodes.
    pub fn reset(&mut self, capacity: usize) {
        self.items.clear();
        self.items.reserve(capacity);
        self.head = 0;
        self.level_end = 0;
    }

    /// Appends `u` to the *next* level.
    pub fn push(&mut self, u: NodeId) {
        self.items.push(u);
    }

    /// Starts a new tree at `u`: pushes it and makes it the current
    /// level. Only valid when the current level is empty.
    pub fn seed(&mut self, u: NodeId) {
        debug_assert_eq!(self.head, self.level_end, "seed with a live level");
        self.head = self.items.len();
        self.items.push(u);
        self.level_end = self.items.len();
    }

    /// Number of nodes in the current level.
    pub fn level_len(&self) -> usize {
        self.level_end - self.head
    }

    /// `[head, level_end)` bounds of the current level, as indices into
    /// the visit order.
    pub fn bounds(&self) -> (usize, usize) {
        (self.head, self.level_end)
    }

    /// The `i`-th node of the visit order (not level-relative).
    pub fn item_at(&self, i: usize) -> NodeId {
        self.items[i]
    }

    /// Makes everything pushed since the last advance the new current
    /// level.
    pub fn advance(&mut self) {
        self.head = self.level_end;
        self.level_end = self.items.len();
    }

    /// All nodes visited so far, in visit order.
    pub fn visited(&self) -> &[NodeId] {
        &self.items
    }

    /// Total nodes visited so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been visited.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consumes the frontier, returning the visit order.
    pub fn into_items(self) -> Vec<NodeId> {
        self.items
    }
}

/// Fixed-size bitset over `u64` words.
///
/// The probe model for a bitset is one 8-byte word array: callers touch
/// word [`DenseBitset::word_of`]`(i)` when reading or writing bit `i`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitset {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitset {
    /// An all-zeros bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        DenseBitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Clears and resizes to `len` bits, reusing the word allocation.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset addresses no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing `u64` words (the probe-side array length).
    pub fn words_len(&self) -> usize {
        self.words.len()
    }

    /// The word index holding bit `i` — the probe touch index for that
    /// bit.
    pub const fn word_of(i: usize) -> usize {
        i / 64
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear_bit(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Typed free lists of kernel working buffers.
///
/// `take_*` hands back a cleared, correctly-sized buffer, reusing a
/// returned allocation when one is available and allocating fresh
/// otherwise — so a cold pool behaves exactly like plain allocation and
/// a warm pool removes allocations from repeated runs. Kernels return
/// buffers via `put_*` from [`crate::Kernel::reclaim`].
#[derive(Debug, Default)]
pub struct BufferPool {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    f64s: Vec<Vec<f64>>,
    nodes: Vec<Vec<NodeId>>,
    pairs: Vec<Vec<(NodeId, u32)>>,
    bitsets: Vec<DenseBitset>,
    frontiers: Vec<Frontier>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// A `len`-element `u32` buffer filled with `fill`.
    pub fn take_u32(&mut self, len: usize, fill: u32) -> Vec<u32> {
        match self.u32s.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, fill);
                v
            }
            None => vec![fill; len],
        }
    }

    /// Returns a `u32` buffer to the pool.
    pub fn put_u32(&mut self, v: Vec<u32>) {
        self.u32s.push(v);
    }

    /// A `len`-element `u64` buffer filled with `fill`.
    pub fn take_u64(&mut self, len: usize, fill: u64) -> Vec<u64> {
        match self.u64s.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, fill);
                v
            }
            None => vec![fill; len],
        }
    }

    /// Returns a `u64` buffer to the pool.
    pub fn put_u64(&mut self, v: Vec<u64>) {
        self.u64s.push(v);
    }

    /// A `len`-element `f64` buffer filled with `fill`.
    pub fn take_f64(&mut self, len: usize, fill: f64) -> Vec<f64> {
        match self.f64s.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, fill);
                v
            }
            None => vec![fill; len],
        }
    }

    /// Returns an `f64` buffer to the pool.
    pub fn put_f64(&mut self, v: Vec<f64>) {
        self.f64s.push(v);
    }

    /// An empty node list with room for `capacity` entries.
    pub fn take_nodes(&mut self, capacity: usize) -> Vec<NodeId> {
        match self.nodes.pop() {
            Some(mut v) => {
                v.clear();
                v.reserve(capacity);
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a node list to the pool.
    pub fn put_nodes(&mut self, v: Vec<NodeId>) {
        self.nodes.push(v);
    }

    /// An empty `(node, cursor)` stack with room for `capacity` frames.
    pub fn take_pairs(&mut self, capacity: usize) -> Vec<(NodeId, u32)> {
        match self.pairs.pop() {
            Some(mut v) => {
                v.clear();
                v.reserve(capacity);
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a pair stack to the pool.
    pub fn put_pairs(&mut self, v: Vec<(NodeId, u32)>) {
        self.pairs.push(v);
    }

    /// An all-zeros bitset of `len` bits.
    pub fn take_bitset(&mut self, len: usize) -> DenseBitset {
        match self.bitsets.pop() {
            Some(mut b) => {
                b.reset(len);
                b
            }
            None => DenseBitset::new(len),
        }
    }

    /// Returns a bitset to the pool.
    pub fn put_bitset(&mut self, b: DenseBitset) {
        self.bitsets.push(b);
    }

    /// An empty frontier with room for `capacity` nodes.
    pub fn take_frontier(&mut self, capacity: usize) -> Frontier {
        match self.frontiers.pop() {
            Some(mut f) => {
                f.reset(capacity);
                f
            }
            None => {
                let mut f = Frontier::new();
                f.reset(capacity);
                f
            }
        }
    }

    /// Returns a frontier to the pool.
    pub fn put_frontier(&mut self, f: Frontier) {
        self.frontiers.push(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprobe_is_inert() {
        let mut p = NoProbe;
        let s = p.alloc(10, 4);
        p.touch(s, 3);
        p.op(5);
    }

    #[test]
    fn slot_roundtrips_index() {
        assert_eq!(Slot::new(7).index(), 7);
    }

    #[test]
    fn frontier_levels_advance() {
        let mut f = Frontier::new();
        f.reset(8);
        f.seed(3);
        assert_eq!(f.level_len(), 1);
        assert_eq!(f.bounds(), (0, 1));
        f.push(1);
        f.push(2);
        assert_eq!(f.level_len(), 1, "pushes land in the next level");
        f.advance();
        assert_eq!(f.level_len(), 2);
        assert_eq!(f.bounds(), (1, 3));
        f.advance();
        assert_eq!(f.level_len(), 0);
        assert_eq!(f.visited(), &[3, 1, 2]);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert_eq!(f.into_items(), vec![3, 1, 2]);
    }

    #[test]
    fn frontier_reseeds_after_drained_level() {
        let mut f = Frontier::new();
        f.reset(4);
        f.seed(0);
        f.advance();
        assert_eq!(f.level_len(), 0);
        f.seed(2);
        assert_eq!(f.level_len(), 1);
        assert_eq!(f.item_at(1), 2);
        assert_eq!(f.visited(), &[0, 2]);
    }

    #[test]
    fn bitset_set_get_clear() {
        let mut b = DenseBitset::new(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.words_len(), 3);
        assert!(!b.get(129));
        b.set(129);
        b.set(0);
        b.set(64);
        assert!(b.get(129) && b.get(0) && b.get(64));
        assert_eq!(b.count_ones(), 3);
        b.clear_bit(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
        assert_eq!(DenseBitset::word_of(129), 2);
    }

    #[test]
    fn bitset_reset_clears_bits() {
        let mut b = DenseBitset::new(10);
        b.set(3);
        b.reset(70);
        assert_eq!(b.len(), 70);
        assert!(!b.get(3));
        assert_eq!(b.count_ones(), 0);
        assert!(!b.is_empty());
        b.reset(0);
        assert!(b.is_empty());
    }

    #[test]
    fn pool_reuses_buffers() {
        let mut pool = BufferPool::new();
        let mut v = pool.take_u32(4, 9);
        assert_eq!(v, vec![9; 4]);
        v.push(1);
        let cap = v.capacity();
        pool.put_u32(v);
        let v2 = pool.take_u32(2, 0);
        assert_eq!(v2, vec![0, 0]);
        assert!(v2.capacity() >= cap.min(2));

        let b = pool.take_bitset(65);
        pool.put_bitset(b);
        let b2 = pool.take_bitset(5);
        assert_eq!(b2.len(), 5);
        assert_eq!(b2.count_ones(), 0);

        let f = pool.take_frontier(3);
        pool.put_frontier(f);
        let f2 = pool.take_frontier(1);
        assert!(f2.is_empty());
    }

    #[test]
    fn heap_probe_walks_are_logarithmic() {
        struct Counter(u64);
        impl Probe for Counter {
            fn alloc(&mut self, _len: usize, _elem_bytes: u64) -> Slot {
                Slot::new(0)
            }
            fn touch(&mut self, _slot: Slot, _i: usize) {
                self.0 += 1;
            }
            fn op(&mut self, _n: u64) {}
        }
        let mut c = Counter(0);
        let s = c.alloc(16, 8);
        probe_heap_push(&mut c, s, 14); // path 14 -> 6 -> 2 -> 0
        assert_eq!(c.0, 4);
        c.0 = 0;
        probe_heap_pop(&mut c, s, 15); // path 0 -> 1 -> 3 -> 7
        assert_eq!(c.0, 4);
        c.0 = 0;
        probe_heap_pop(&mut c, s, 0);
        assert_eq!(c.0, 0);
    }

    #[test]
    fn graph_slots_scan_touches_offsets() {
        use gorder_graph::Graph;
        struct Rec(Vec<(u32, usize)>);
        impl Probe for Rec {
            fn alloc(&mut self, _len: usize, _elem_bytes: u64) -> Slot {
                let s = Slot::new(self.0.len() as u32);
                self.0.push((s.index(), usize::MAX));
                s
            }
            fn touch(&mut self, slot: Slot, i: usize) {
                self.0.push((slot.index(), i));
            }
            fn op(&mut self, _n: u64) {}
        }
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let mut p = Rec(Vec::new());
        let gs = GraphSlots::new(&mut p, &g);
        let (list, base) = gs.out_list(&mut p, &g, 0);
        assert_eq!(list, &[1, 2]);
        assert_eq!(base, 0);
        let (list, base) = gs.in_list(&mut p, &g, 2);
        assert_eq!(list.len(), 2);
        assert_eq!(base, 1);
        // 4 allocs + 2 offset touches per scan.
        assert_eq!(p.0.len(), 8);
    }
}
