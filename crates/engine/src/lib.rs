//! # gorder-engine — the unified kernel execution engine
//!
//! Before this crate, each of the paper's nine benchmark kernels existed
//! twice: once hand-rolled in `gorder-algos` for wall-clock runs, and
//! once re-rolled in `gorder-cachesim` as a memory-access replayer. The
//! engine collapses both into a single implementation per kernel:
//!
//! * a [`Kernel`] trait — `init` / `iterate` / `converged` / `finish`,
//!   object-safe per probe type like `OrderingAlgorithm`, so registries
//!   of boxed kernels work;
//! * a probe abstraction ([`Probe`]) — kernels report every array they
//!   allocate and every element they touch. [`NoProbe`] compiles the
//!   reporting away (wall-clock), the cache simulator's tracing probe
//!   turns the same code into a cache-model driver;
//! * reusable primitives ([`Frontier`], [`DenseBitset`], [`BufferPool`])
//!   so per-run allocations disappear from repeated runs;
//! * a [`KernelStats`] record filled by the driver and the kernels —
//!   iterations, edges relaxed, frontier occupancy, phase timings;
//! * budget composition — [`run_kernel`] polls `gorder_core`'s
//!   [`Budget`] between iterates and returns an [`ExecOutcome`], so
//!   kernels inherit the deadline / node-cap / cancellation vocabulary
//!   of the ordering layer. Kernels are *anytime* at iterate
//!   granularity: an exhausted budget yields a `Degraded` run whose
//!   checksum reflects the partial state.
//!
//! The driver loop is deliberately tiny:
//!
//! ```text
//! init → [ budget check → iterate ]* → finish
//! ```
//!
//! `iterate` advances one kernel-specific unit (a BFS level, a
//! Bellman–Ford round, a power iteration, one peeled node, …), which is
//! also the unit `KernelStats::iterations` counts and node-capped
//! budgets meter.

pub mod kernels;
pub mod mem;
pub mod parallel;
pub mod partition;
pub mod stats;

pub use mem::{BufferPool, DenseBitset, Frontier, GraphSlots, NoProbe, Probe, Slot};
pub use partition::{partition_offsets, partition_rows, split_even, RowRange};
pub use stats::KernelStats;

use gorder_core::budget::{Budget, ExecOutcome};
use gorder_graph::{Graph, NodeId};
use std::time::Instant;

/// Shared run parameters for every kernel.
///
/// This is the single source of truth re-exported as
/// `gorder_algos::RunCtx` and `gorder_cachesim::TraceCtx`; harnesses map
/// `source` through each ordering's permutation so every ordering
/// computes from the same *logical* node.
#[derive(Debug, Clone)]
pub struct KernelCtx {
    /// Source node for BFS/SP. `None` selects the graph's max-degree node.
    pub source: Option<NodeId>,
    /// PageRank power iterations (paper: 100).
    pub pr_iterations: u32,
    /// PageRank damping factor (paper: 0.85).
    pub damping: f64,
    /// Number of random sources for the diameter estimate (paper: 5000;
    /// scaled down for laptop-size graphs).
    pub diameter_samples: u32,
    /// Seed for diameter source sampling.
    pub seed: u64,
}

impl Default for KernelCtx {
    fn default() -> Self {
        KernelCtx {
            source: None,
            pr_iterations: 100,
            damping: 0.85,
            diameter_samples: 16,
            seed: 0xD1A,
        }
    }
}

impl KernelCtx {
    /// Resolves the effective source node for `g`.
    ///
    /// An explicit source that is out of range for `g` (e.g. a context
    /// built for a larger graph) is ignored rather than handed to the
    /// kernels, which would index `dist[source]` with it and panic; the
    /// max-degree fallback applies instead, and 0 covers the empty
    /// graph (where kernels converge at init without touching it).
    pub fn source_for(&self, g: &Graph) -> NodeId {
        self.source
            .filter(|&s| s < g.n())
            .or_else(|| g.max_degree_node())
            .unwrap_or(0)
    }
}

/// How the engine schedules a kernel's work.
///
/// `Parallel` grants the kernels a worker budget; each kernel decides
/// which of its sections can use it (PR's pull sweep, BFS's level
/// expansion, Kcore's degree init, Diam's per-source sweeps) and falls
/// back to the serial path elsewhere. Plans never change results: every
/// parallel section reduces in a fixed thread order, so a run under any
/// plan is byte-identical to the serial run. Probes that are not
/// [`Probe::PARALLEL_SAFE`] (the cache tracer) force the serial path
/// regardless of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPlan {
    /// Single-threaded execution (the default).
    #[default]
    Serial,
    /// Up to `threads` scoped workers for parallel-capable sections.
    Parallel {
        /// Worker budget; values ≤ 1 behave like [`ExecPlan::Serial`].
        threads: u32,
    },
}

impl ExecPlan {
    /// A plan granting `threads` workers; 0 or 1 yields [`ExecPlan::Serial`].
    pub fn with_threads(threads: u32) -> Self {
        if threads <= 1 {
            ExecPlan::Serial
        } else {
            ExecPlan::Parallel { threads }
        }
    }

    /// Worker budget of this plan (≥ 1).
    pub fn threads(self) -> u32 {
        match self {
            ExecPlan::Serial => 1,
            ExecPlan::Parallel { threads } => threads.max(1),
        }
    }
}

/// Mutable execution environment handed to every kernel call: the probe
/// observing memory traffic, the stats record under construction, and
/// the buffer pool working storage is drawn from.
pub struct Exec<'a, P: Probe> {
    /// Memory-traffic observer ([`NoProbe`] for wall-clock runs).
    pub probe: P,
    /// Counters the kernel and driver fill in as the run progresses.
    pub stats: KernelStats,
    /// Pool that `init` draws working buffers from and `reclaim`
    /// returns them to.
    pub pool: &'a mut BufferPool,
    /// Scheduling plan for parallel-capable kernel sections.
    pub plan: ExecPlan,
}

impl<'a, P: Probe> Exec<'a, P> {
    /// A fresh serial environment around `probe` and `pool`.
    pub fn new(probe: P, pool: &'a mut BufferPool) -> Self {
        Exec::with_plan(probe, pool, ExecPlan::Serial)
    }

    /// A fresh environment executing under `plan`.
    pub fn with_plan(probe: P, pool: &'a mut BufferPool, plan: ExecPlan) -> Self {
        Exec {
            probe,
            stats: KernelStats::default(),
            pool,
            plan,
        }
    }

    /// Effective worker budget for parallel sections: the plan's thread
    /// count, clamped to 1 under probes that cannot tolerate a split
    /// access stream (everything except [`NoProbe`]).
    pub fn par_threads(&self) -> usize {
        if P::PARALLEL_SAFE {
            self.plan.threads() as usize
        } else {
            1
        }
    }
}

/// One benchmark kernel, expressed as a resumable state machine.
///
/// The contract: [`Kernel::init`] allocates working state (registering
/// each array with the probe) and seeds the computation;
/// [`Kernel::iterate`] advances one kernel-specific unit of work and is
/// called until [`Kernel::converged`] returns true (or the budget runs
/// out); [`Kernel::finish`] folds the state into the checksum — the same
/// value the legacy `gorder-algos` implementations returned, which is
/// what keeps cross-ordering equivalence testable. [`Kernel::reclaim`]
/// optionally returns buffers to the pool for the next run.
///
/// The trait is object-safe for any fixed probe type, mirroring
/// `OrderingAlgorithm`: registries hold `Box<dyn Kernel<P>>`.
pub trait Kernel<P: Probe> {
    /// Short name matching the paper's figure labels (NQ, BFS, …).
    fn name(&self) -> &'static str;
    /// Allocates working state and seeds the computation.
    fn init(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>);
    /// True once the computation has nothing left to do.
    fn converged(&self) -> bool;
    /// Advances one unit of work (a frontier level, a relaxation round,
    /// a power iteration, one peeled node, …).
    fn iterate(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>);
    /// Folds the final (or partial, under an exhausted budget) state
    /// into the run checksum.
    fn finish(&mut self, g: &Graph, ctx: &KernelCtx, ex: &mut Exec<'_, P>) -> u64;
    /// Returns pooled buffers for reuse by a later run. Default: keep
    /// nothing (state is dropped).
    fn reclaim(&mut self, pool: &mut BufferPool) {
        let _ = pool;
    }
}

/// What a completed (or degraded) kernel run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// The kernel's checksum — identical to the legacy
    /// `GraphAlgorithm::run` value for the same graph and context.
    pub checksum: u64,
    /// Work and timing metrics for the run.
    pub stats: KernelStats,
}

/// Drives `kernel` to convergence under `budget`, filling `ex.stats`.
///
/// The budget is polled before every iterate with
/// `iterations`-completed as the work unit, so node-capped budgets meter
/// engine steps and watchdog cancellation is honoured within one step.
/// A budget that is exhausted before any work yields [`ExecOutcome::TimedOut`]
/// (unless the kernel converged at `init`, e.g. on an empty graph);
/// exhaustion after partial progress yields a `Degraded` run whose
/// checksum folds the partial state.
pub fn run_kernel<P: Probe, K: Kernel<P> + ?Sized>(
    kernel: &mut K,
    g: &Graph,
    ctx: &KernelCtx,
    ex: &mut Exec<'_, P>,
    budget: &Budget,
) -> ExecOutcome<u64> {
    ex.stats.threads_used = ex.par_threads() as u32;
    let t = Instant::now();
    kernel.init(g, ctx, ex);
    ex.stats.init_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut stopped = None;
    while !kernel.converged() {
        if let Some(reason) = budget.exhausted(ex.stats.iterations) {
            stopped = Some(reason);
            break;
        }
        kernel.iterate(g, ctx, ex);
        ex.stats.iterations += 1;
    }
    ex.stats.compute_secs = t.elapsed().as_secs_f64();

    if let Some(reason) = stopped {
        if ex.stats.iterations == 0 {
            return ExecOutcome::TimedOut;
        }
        let t = Instant::now();
        let checksum = kernel.finish(g, ctx, ex);
        ex.stats.finish_secs = t.elapsed().as_secs_f64();
        ex.stats.export(kernel.name());
        return ExecOutcome::Degraded(checksum, reason);
    }

    let t = Instant::now();
    let checksum = kernel.finish(g, ctx, ex);
    ex.stats.finish_secs = t.elapsed().as_secs_f64();
    ex.stats.export(kernel.name());
    ExecOutcome::Completed(checksum)
}

/// All nine paper kernels in presentation order, boxed for a given
/// probe type.
pub fn registry<P: Probe>() -> Vec<Box<dyn Kernel<P>>> {
    vec![
        Box::new(kernels::nq::NqKernel::new()),
        Box::new(kernels::bfs::BfsKernel::new()),
        Box::new(kernels::dfs::DfsKernel::new()),
        Box::new(kernels::scc::SccKernel::new()),
        Box::new(kernels::sp::SpKernel::new()),
        Box::new(kernels::pagerank::PrKernel::new()),
        Box::new(kernels::domset::DsKernel::new()),
        Box::new(kernels::kcore::KcoreKernel::new()),
        Box::new(kernels::diameter::DiamKernel::new()),
    ]
}

/// The paper labels of the nine engine kernels, in presentation order.
pub fn kernel_names() -> Vec<&'static str> {
    registry::<NoProbe>().iter().map(|k| k.name()).collect()
}

/// Looks a kernel up by its paper label, case-insensitively.
pub fn by_name<P: Probe>(name: &str) -> Option<Box<dyn Kernel<P>>> {
    registry::<P>()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// True when `name` labels one of the nine engine kernels
/// (case-insensitive).
pub fn is_kernel(name: &str) -> bool {
    by_name::<NoProbe>(name).is_some()
}

/// Runs the kernel labelled `name` under `budget`, observing through
/// `probe` and drawing buffers from `pool`. Returns `None` for an
/// unknown label; otherwise the outcome carries the checksum + stats,
/// and the kernel's buffers are reclaimed into `pool` for the next run.
pub fn execute<P: Probe>(
    name: &str,
    g: &Graph,
    ctx: &KernelCtx,
    probe: P,
    pool: &mut BufferPool,
    budget: &Budget,
) -> Option<ExecOutcome<KernelRun>> {
    execute_plan(name, g, ctx, probe, pool, budget, ExecPlan::Serial)
}

/// [`execute`] under an explicit [`ExecPlan`]. The plan only changes how
/// the work is scheduled — results and work counters are identical to
/// the serial run for every kernel.
///
/// **Degradation ladder (Parallel → Serial).** A worker panic during a
/// parallel run does not abort the process: the failed attempt is
/// discarded and — when the probe can be duplicated
/// ([`Probe::duplicate`]; [`NoProbe`] always can) — the whole cell
/// re-runs serially on a **fresh** kernel. The retry's stats carry
/// [`KernelStats::degraded_serial`]` = true` and the global
/// `engine.panic_recovered` counter is incremented. A panic that is not
/// a worker panic, or one under a non-duplicable probe, propagates
/// unchanged (the guarded-sweep layer above turns it into a failed
/// cell).
pub fn execute_plan<P: Probe>(
    name: &str,
    g: &Graph,
    ctx: &KernelCtx,
    probe: P,
    pool: &mut BufferPool,
    budget: &Budget,
    plan: ExecPlan,
) -> Option<ExecOutcome<KernelRun>> {
    if !is_kernel(name) {
        return None;
    }
    let retry_probe = match plan {
        ExecPlan::Serial => None,
        _ => probe.duplicate(),
    };
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_plan_once(name, g, ctx, probe, pool, budget, plan)
    }));
    match attempt {
        Ok(outcome) => Some(outcome),
        Err(payload) => {
            let Some(wp) = payload.downcast_ref::<parallel::WorkerPanic>() else {
                std::panic::resume_unwind(payload);
            };
            let Some(retry_probe) = retry_probe else {
                std::panic::resume_unwind(payload);
            };
            eprintln!(
                "[engine] {name}: worker panicked ({}); retrying serially",
                wp.0
            );
            gorder_obs::global().counter_add("engine.panic_recovered", 1);
            let outcome =
                execute_plan_once(name, g, ctx, retry_probe, pool, budget, ExecPlan::Serial);
            Some(outcome.map(|mut run| {
                run.stats.degraded_serial = true;
                run
            }))
        }
    }
}

/// One attempt of [`execute_plan`]: builds a fresh kernel (used kernels
/// are not re-init-safe) and runs it under `plan`.
fn execute_plan_once<P: Probe>(
    name: &str,
    g: &Graph,
    ctx: &KernelCtx,
    probe: P,
    pool: &mut BufferPool,
    budget: &Budget,
    plan: ExecPlan,
) -> ExecOutcome<KernelRun> {
    let mut kernel = by_name::<P>(name).expect("caller checked is_kernel");
    let mut ex = Exec::with_plan(probe, pool, plan);
    let outcome = run_kernel(kernel.as_mut(), g, ctx, &mut ex, budget);
    let stats = ex.stats.clone();
    kernel.reclaim(ex.pool);
    outcome.map(|checksum| KernelRun { checksum, stats })
}

/// Unbudgeted convenience wrapper around [`execute`] with a fresh pool:
/// runs the kernel labelled `name` through `probe` and returns its
/// checksum + stats, or `None` for an unknown label.
pub fn run_probed<P: Probe>(name: &str, g: &Graph, ctx: &KernelCtx, probe: P) -> Option<KernelRun> {
    run_probed_plan(name, g, ctx, probe, ExecPlan::Serial)
}

/// [`run_probed`] under an explicit [`ExecPlan`].
pub fn run_probed_plan<P: Probe>(
    name: &str,
    g: &Graph,
    ctx: &KernelCtx,
    probe: P,
    plan: ExecPlan,
) -> Option<KernelRun> {
    let mut pool = BufferPool::new();
    let outcome = execute_plan(name, g, ctx, probe, &mut pool, &Budget::unlimited(), plan)?;
    Some(outcome.value().expect("unlimited budget always completes"))
}

/// Wall-clock convenience: [`run_probed`] with [`NoProbe`].
pub fn run_by_name(name: &str, g: &Graph, ctx: &KernelCtx) -> Option<KernelRun> {
    run_probed(name, g, ctx, NoProbe)
}

/// Wall-clock convenience: [`run_probed_plan`] with [`NoProbe`].
pub fn run_by_name_plan(
    name: &str,
    g: &Graph,
    ctx: &KernelCtx,
    plan: ExecPlan,
) -> Option<KernelRun> {
    run_probed_plan(name, g, ctx, NoProbe, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_core::budget::DegradeReason;

    fn diamond() -> Graph {
        // 0 -> {1,2} -> 3, plus a disconnected 4.
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn registry_has_nine_in_paper_order() {
        assert_eq!(
            kernel_names(),
            vec!["NQ", "BFS", "DFS", "SCC", "SP", "PR", "DS", "Kcore", "Diam"]
        );
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name::<NoProbe>("bfs").is_some());
        assert!(by_name::<NoProbe>("KCORE").is_some());
        assert!(by_name::<NoProbe>("nope").is_none());
        assert!(is_kernel("pr"));
        assert!(!is_kernel("WCC"));
    }

    #[test]
    fn every_kernel_completes_unbudgeted() {
        let g = diamond();
        let ctx = KernelCtx {
            pr_iterations: 5,
            diameter_samples: 3,
            ..Default::default()
        };
        for name in kernel_names() {
            let run = run_by_name(name, &g, &ctx).unwrap();
            assert!(run.stats.iterations > 0, "{name} took no iterations");
        }
    }

    #[test]
    fn every_kernel_handles_the_empty_graph() {
        let g = Graph::empty(0);
        let ctx = KernelCtx::default();
        for name in kernel_names() {
            let _ = run_by_name(name, &g, &ctx).unwrap();
        }
    }

    #[test]
    fn unknown_kernel_is_none() {
        assert!(run_by_name("WCC", &diamond(), &KernelCtx::default()).is_none());
    }

    #[test]
    fn pre_exhausted_budget_times_out() {
        let g = diamond();
        let ctx = KernelCtx::default();
        let budget = Budget::unlimited().with_node_cap(0);
        let out = execute("BFS", &g, &ctx, NoProbe, &mut BufferPool::new(), &budget).unwrap();
        assert_eq!(out, ExecOutcome::TimedOut);
    }

    #[test]
    fn node_cap_degrades_mid_run() {
        let g = diamond();
        let ctx = KernelCtx::default();
        // Kcore peels one node per iterate; cap at 2 of the 5.
        let budget = Budget::unlimited().with_node_cap(2);
        let out = execute("Kcore", &g, &ctx, NoProbe, &mut BufferPool::new(), &budget).unwrap();
        match out {
            ExecOutcome::Degraded(run, DegradeReason::NodeCapReached) => {
                assert_eq!(run.stats.iterations, 2);
            }
            other => panic!("expected degraded run, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_degrades_mid_run() {
        let g = diamond();
        let budget = Budget::unlimited();
        // Cancel after init by capping at 1 first, then cancelling: the
        // cancel flag outranks the cap reason.
        budget.cancel();
        let out = execute(
            "SP",
            &g,
            &KernelCtx::default(),
            NoProbe,
            &mut BufferPool::new(),
            &budget,
        )
        .unwrap();
        assert_eq!(out, ExecOutcome::TimedOut);
    }

    #[test]
    fn empty_graph_completes_even_under_zero_cap() {
        // Converged at init → no budget check ever fires.
        let g = Graph::empty(0);
        let budget = Budget::unlimited().with_node_cap(0);
        let out = execute(
            "BFS",
            &g,
            &KernelCtx::default(),
            NoProbe,
            &mut BufferPool::new(),
            &budget,
        )
        .unwrap();
        assert!(out.is_completed());
    }

    #[test]
    fn pool_reuse_preserves_checksums() {
        let g = diamond();
        let ctx = KernelCtx {
            pr_iterations: 5,
            diameter_samples: 2,
            ..Default::default()
        };
        let mut pool = BufferPool::new();
        for name in kernel_names() {
            let first = execute(name, &g, &ctx, NoProbe, &mut pool, &Budget::unlimited())
                .unwrap()
                .value()
                .unwrap();
            let second = execute(name, &g, &ctx, NoProbe, &mut pool, &Budget::unlimited())
                .unwrap()
                .value()
                .unwrap();
            assert_eq!(first.checksum, second.checksum, "{name} under pool reuse");
            assert_eq!(first.stats.iterations, second.stats.iterations);
            assert_eq!(first.stats.edges_relaxed, second.stats.edges_relaxed);
        }
    }

    #[test]
    fn stats_phase_timings_are_populated() {
        let run = run_by_name("BFS", &diamond(), &KernelCtx::default()).unwrap();
        assert!(run.stats.init_secs >= 0.0);
        assert!(run.stats.compute_secs >= 0.0);
        assert!(run.stats.total_secs() >= run.stats.compute_secs);
    }

    #[test]
    fn plan_with_threads_normalises() {
        assert_eq!(ExecPlan::with_threads(0), ExecPlan::Serial);
        assert_eq!(ExecPlan::with_threads(1), ExecPlan::Serial);
        assert_eq!(ExecPlan::with_threads(4), ExecPlan::Parallel { threads: 4 });
        assert_eq!(ExecPlan::Serial.threads(), 1);
        assert_eq!(ExecPlan::Parallel { threads: 0 }.threads(), 1);
        assert_eq!(ExecPlan::Parallel { threads: 7 }.threads(), 7);
        assert_eq!(ExecPlan::default(), ExecPlan::Serial);
    }

    #[test]
    fn serial_runs_report_one_thread() {
        let run = run_by_name("PR", &diamond(), &KernelCtx::default()).unwrap();
        assert_eq!(run.stats.threads_used, 1);
        assert!(run.stats.thread_busy_secs.is_empty());
    }

    #[test]
    fn parallel_plan_reports_thread_count() {
        let run = run_by_name_plan(
            "PR",
            &diamond(),
            &KernelCtx::default(),
            ExecPlan::with_threads(3),
        )
        .unwrap();
        assert_eq!(run.stats.threads_used, 3);
    }

    #[test]
    fn unsafe_probe_forces_serial_path() {
        struct Tracerish;
        impl Probe for Tracerish {
            fn alloc(&mut self, _len: usize, _elem_bytes: u64) -> Slot {
                Slot::new(0)
            }
            fn touch(&mut self, _slot: Slot, _i: usize) {}
            fn op(&mut self, _n: u64) {}
        }
        let run = run_probed_plan(
            "PR",
            &diamond(),
            &KernelCtx::default(),
            Tracerish,
            ExecPlan::with_threads(4),
        )
        .unwrap();
        assert_eq!(run.stats.threads_used, 1);
    }

    #[test]
    fn source_for_ignores_out_of_range_source() {
        let g = diamond(); // 5 nodes; max-degree node is 0 or 3
        let ctx = KernelCtx {
            source: Some(99),
            ..Default::default()
        };
        let s = ctx.source_for(&g);
        assert!(s < g.n(), "out-of-range source must not propagate");
        assert_eq!(s, ctx.source_for(&g), "resolution is deterministic");
        // In-range sources still win over the fallback.
        let ctx = KernelCtx {
            source: Some(2),
            ..Default::default()
        };
        assert_eq!(ctx.source_for(&g), 2);
    }

    #[test]
    fn source_for_degenerate_graphs() {
        let empty = Graph::empty(0);
        let one = Graph::empty(1);
        for source in [None, Some(0), Some(5)] {
            let ctx = KernelCtx {
                source,
                ..Default::default()
            };
            assert_eq!(ctx.source_for(&empty), 0, "empty graph falls back to 0");
            assert_eq!(ctx.source_for(&one), 0);
        }
    }

    #[test]
    fn out_of_range_source_runs_do_not_panic() {
        let g = diamond();
        let ctx = KernelCtx {
            source: Some(1_000_000),
            pr_iterations: 3,
            diameter_samples: 2,
            ..Default::default()
        };
        for name in kernel_names() {
            let _ = run_by_name(name, &g, &ctx).unwrap();
        }
    }
}
