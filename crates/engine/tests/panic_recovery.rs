//! Panic-isolation acceptance tests (own process: fault arming is
//! process-global, so these cannot share a binary with tests that assert
//! panic-free parallel runs).
//!
//! The degradation ladder under test: a worker panic during a parallel
//! kernel run must not abort the process — the engine discards the
//! failed attempt, re-runs the cell serially on a fresh kernel, marks
//! the stats `degraded_serial`, and bumps `engine.panic_recovered`.

use gorder_engine::{run_by_name_plan, ExecPlan, KernelCtx};
use gorder_graph::Graph;
use gorder_obs::faults;
use std::sync::Mutex;

// Serialises the tests: the fault plan and its counters are shared.
static FAULTS: Mutex<()> = Mutex::new(());

fn ring_graph(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|u| [(u, (u + 1) % n), (u, (u + 7) % n)])
        .collect();
    Graph::from_edges(n, &edges)
}

#[test]
fn injected_worker_panic_degrades_to_serial_not_abort() {
    let _guard = FAULTS.lock().unwrap();
    let g = ring_graph(200);
    let ctx = KernelCtx::default();
    let clean = run_by_name_plan("PR", &g, &ctx, ExecPlan::Serial).expect("PR is a kernel");
    assert!(!clean.stats.degraded_serial);

    faults::arm_from_spec("engine.worker=1").unwrap();
    let before = gorder_obs::global().counter("engine.panic_recovered");
    let run = run_by_name_plan("PR", &g, &ctx, ExecPlan::with_threads(3)).expect("PR is a kernel");
    faults::disarm();

    assert!(run.stats.degraded_serial, "cell must record the downgrade");
    assert_eq!(
        run.stats.threads_used, 1,
        "the retry ran on the ladder's serial rung"
    );
    assert_eq!(
        run.checksum, clean.checksum,
        "the serial retry computes the same result"
    );
    assert_eq!(
        run.stats.iterations, clean.stats.iterations,
        "retry stats describe the retry, not the aborted attempt"
    );
    assert_eq!(
        gorder_obs::global().counter("engine.panic_recovered"),
        before + 1
    );
}

#[test]
fn every_parallel_kernel_survives_a_first_worker_panic() {
    let _guard = FAULTS.lock().unwrap();
    let g = ring_graph(150);
    let ctx = KernelCtx::default();
    for name in gorder_engine::kernel_names() {
        let clean = run_by_name_plan(name, &g, &ctx, ExecPlan::Serial).unwrap();
        faults::arm_from_spec("engine.worker=1").unwrap();
        let run = run_by_name_plan(name, &g, &ctx, ExecPlan::with_threads(4)).unwrap();
        faults::disarm();
        assert_eq!(run.checksum, clean.checksum, "{name}");
        // Kernels without a parallel section never hit the fault point
        // and stay undegraded; ones that do must downgrade cleanly.
        if run.stats.degraded_serial {
            assert_eq!(run.stats.threads_used, 1, "{name}");
        }
    }
}

#[test]
fn panic_free_parallel_run_is_not_degraded() {
    let _guard = FAULTS.lock().unwrap();
    faults::disarm();
    let g = ring_graph(200);
    let run = run_by_name_plan("PR", &g, &KernelCtx::default(), ExecPlan::with_threads(3)).unwrap();
    assert!(!run.stats.degraded_serial);
    assert_eq!(run.stats.threads_used, 3);
}
