//! The cache-simulator replayers must *be* the algorithms: for every
//! benchmark algorithm, the traced replayer's checksum equals the
//! `gorder-algos` implementation's checksum, on multiple graphs and under
//! multiple orderings. This is what licenses reading the simulator's
//! counters as "the algorithm's cache behaviour".

use gorder::cachesim::trace::{replay, TraceCtx, TRACED_ALGOS};
use gorder::cachesim::{CacheHierarchy, HierarchyConfig, Tracer};
use gorder::prelude::*;
use gorder_algos::RunCtx;

fn graphs() -> Vec<Graph> {
    vec![
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (0, 3), (4, 5)]),
        gorder::graph::datasets::epinion_like().build(0.06),
        gorder::graph::gen::copying_model(300, 5, 0.6, 9),
    ]
}

fn contexts(seed: u64) -> (RunCtx, TraceCtx) {
    let a = RunCtx {
        source: None,
        pr_iterations: 7,
        damping: 0.85,
        diameter_samples: 3,
        seed,
    };
    let t = TraceCtx {
        source: None,
        pr_iterations: 7,
        damping: 0.85,
        diameter_samples: 3,
        seed,
    };
    (a, t)
}

#[test]
fn replayers_match_algorithms_on_plain_graphs() {
    let (actx, tctx) = contexts(5);
    for (gi, g) in graphs().iter().enumerate() {
        for name in TRACED_ALGOS {
            let expected = gorder::algos::by_name(name).unwrap().run(g, &actx);
            let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
            let traced = replay(name, g, &mut tracer, &tctx).unwrap();
            assert_eq!(traced, expected, "{name} diverges on graph {gi}");
        }
    }
}

#[test]
fn replayers_match_algorithms_under_reordering() {
    let g = gorder::graph::datasets::epinion_like().build(0.05);
    let (mut actx, mut tctx) = contexts(8);
    let logical = g.max_degree_node().unwrap();
    for ordering in ["Random", "RCM", "Gorder"] {
        let perm = gorder::orders::by_name(ordering, 2).unwrap().compute(&g);
        let rg = g.relabel(&perm);
        actx.source = Some(perm.apply(logical));
        tctx.source = Some(perm.apply(logical));
        for name in TRACED_ALGOS {
            let expected = gorder::algos::by_name(name).unwrap().run(&rg, &actx);
            let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
            let traced = replay(name, &rg, &mut tracer, &tctx).unwrap();
            assert_eq!(traced, expected, "{name} diverges under {ordering}");
        }
    }
}

#[test]
fn extension_replayers_match_algorithms() {
    use gorder::cachesim::trace::TRACED_EXTENSIONS;
    let (actx, tctx) = contexts(3);
    for (gi, g) in graphs().iter().enumerate() {
        for name in TRACED_EXTENSIONS {
            let expected = gorder::algos::by_name(name).unwrap().run(g, &actx);
            let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
            let traced = replay(name, g, &mut tracer, &tctx).unwrap();
            assert_eq!(traced, expected, "{name} diverges on graph {gi}");
        }
    }
}

/// The simulator actually exercises deeper levels on a graph bigger than
/// its scaled-down L1.
#[test]
fn replays_produce_plausible_cache_traffic() {
    let g = gorder::graph::datasets::epinion_like().build(0.3);
    let (_, tctx) = contexts(1);
    for name in TRACED_ALGOS {
        let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
        replay(name, &g, &mut tracer, &tctx).unwrap();
        let s = tracer.stats();
        assert!(s.l1_refs > u64::from(g.n()), "{name}: too few references");
        assert!(s.l1_miss_rate > 0.0, "{name}: suspiciously perfect L1");
        assert!(s.l1_miss_rate < 0.9, "{name}: suspiciously terrible L1");
        assert!(
            s.cache_miss_rate <= s.l1_miss_rate,
            "{name}: level filter inverted"
        );
    }
}
