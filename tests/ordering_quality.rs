//! Cross-crate checks of the paper's *qualitative* claims at test scale:
//! Gorder wins its own objective, reduces simulated cache misses vs
//! Random, and the specialist orderings win their home turf (RCM on
//! bandwidth, annealing on its energies).

use gorder::cachesim::trace::{pagerank as traced_pr, TraceCtx};
use gorder::cachesim::{CacheHierarchy, HierarchyConfig, Tracer};
use gorder::prelude::*;
use gorder_core::score::{bandwidth_of, f_score_of, minla_energy_of};
use rand::SeedableRng;

fn structured_graph() -> Graph {
    // shuffle so no ordering gets the answer for free from the generator
    let g = gorder::graph::datasets::wiki_like().build(0.03);
    let shuffle = Permutation::random(g.n(), &mut rand::rngs::StdRng::seed_from_u64(3));
    g.relabel(&shuffle)
}

#[test]
fn gorder_wins_its_own_objective() {
    let g = structured_graph();
    let w = 5;
    let scores: Vec<(String, u64)> = gorder::orders::all(4)
        .iter()
        .map(|o| (o.name().to_string(), f_score_of(&g, &o.compute(&g), w)))
        .collect();
    let gorder = scores.iter().find(|(n, _)| n == "Gorder").unwrap().1;
    for (name, f) in &scores {
        assert!(
            gorder >= *f,
            "Gorder F = {gorder} beaten by {name} = {f} on its own objective"
        );
    }
}

#[test]
fn gorder_beats_random_on_simulated_cache_misses() {
    let g = structured_graph();
    let ctx = TraceCtx {
        pr_iterations: 3,
        ..Default::default()
    };
    let miss_rate = |perm: &Permutation| {
        let rg = g.relabel(perm);
        let mut t = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
        traced_pr(&rg, &mut t, &ctx);
        t.stats().l1_miss_rate
    };
    let random = miss_rate(&Permutation::random(
        g.n(),
        &mut rand::rngs::StdRng::seed_from_u64(5),
    ));
    let gorder = miss_rate(&GorderBuilder::new().build().compute(&g));
    assert!(
        gorder < random * 0.9,
        "gorder L1 miss rate {gorder:.3} should clearly beat random {random:.3}"
    );
}

#[test]
fn rcm_has_best_bandwidth() {
    let g = structured_graph();
    let bw: Vec<(String, u32)> = gorder::orders::all(6)
        .iter()
        .map(|o| (o.name().to_string(), bandwidth_of(&g, &o.compute(&g))))
        .collect();
    let rcm = bw.iter().find(|(n, _)| n == "RCM").unwrap().1;
    // The arrangement-energy optimisers (MinLA/MinLogA) and Gorder chase
    // correlated objectives and may occasionally edge RCM out; the claim
    // that must hold is that RCM beats every ordering that does not
    // optimise an arrangement objective at all.
    for (name, b) in &bw {
        if matches!(name.as_str(), "MinLA" | "MinLogA" | "Gorder" | "RCM") {
            continue;
        }
        assert!(
            rcm < *b,
            "RCM bandwidth {rcm} should beat non-arrangement ordering {name} = {b}"
        );
    }
}

#[test]
fn minla_wins_its_own_energy() {
    let g = structured_graph();
    let energies: Vec<(String, u64)> = gorder::orders::all(8)
        .iter()
        .map(|o| (o.name().to_string(), minla_energy_of(&g, &o.compute(&g))))
        .collect();
    let minla = energies.iter().find(|(n, _)| n == "MinLA").unwrap().1;
    let random = energies.iter().find(|(n, _)| n == "Random").unwrap().1;
    assert!(
        minla < random,
        "MinLA energy {minla} should beat Random {random}"
    );
}

#[test]
fn chdfs_gives_dfs_a_sequential_walk() {
    // After ChDFS reordering, the DFS preorder from the same start is
    // close to 0,1,2,…: measure how many preorder steps are +1 increments.
    let g = gorder::graph::datasets::pokec_like().build(0.05);
    let perm = gorder::orders::ChDfs.compute(&g);
    let rg = g.relabel(&perm);
    let start = rg.nodes().max_by_key(|&u| rg.degree(u)).unwrap();
    let r = gorder_algos::dfs::dfs(&rg, start);
    let sequential = r.preorder.windows(2).filter(|w| w[1] == w[0] + 1).count();
    assert!(
        sequential as f64 > 0.95 * (rg.n() as f64 - 1.0),
        "ChDFS should make DFS visit ids sequentially: {sequential}/{}",
        rg.n() - 1
    );
}

#[test]
fn specialists_profile_differently() {
    // Sanity that the zoo isn't returning copies of one permutation.
    let g = structured_graph();
    let perms: Vec<(String, Permutation)> = gorder::orders::all(9)
        .iter()
        .map(|o| (o.name().to_string(), o.compute(&g)))
        .collect();
    for i in 0..perms.len() {
        for j in i + 1..perms.len() {
            // Original vs anything can coincide only on trivial graphs.
            assert_ne!(
                perms[i].1.as_slice(),
                perms[j].1.as_slice(),
                "{} and {} produced identical permutations",
                perms[i].0,
                perms[j].0
            );
        }
    }
}
