//! Property-based tests over random graphs: permutation group laws,
//! relabeling as a graph isomorphism, ordering validity for the whole zoo,
//! and algorithm invariance under arbitrary relabelings.

use gorder::prelude::*;
use gorder_algos::RunCtx;
use proptest::prelude::*;

/// Strategy: a directed graph with up to `max_n` nodes and `max_m` edges.
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

/// Strategy: a valid permutation of n elements from a shuffle seed.
fn arb_perm(n: u32, seed: u64) -> Permutation {
    use rand::SeedableRng;
    Permutation::random(n, &mut rand::rngs::StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permutation_inverse_roundtrip(g in arb_graph(60, 200), seed in any::<u64>()) {
        let p = arb_perm(g.n(), seed);
        let inv = p.inverse();
        prop_assert!(p.then(&inv).is_identity());
        prop_assert!(inv.then(&p).is_identity());
    }

    #[test]
    fn relabel_is_isomorphism(g in arb_graph(50, 150), seed in any::<u64>()) {
        let p = arb_perm(g.n(), seed);
        let h = g.relabel(&p);
        prop_assert_eq!(g.n(), h.n());
        prop_assert_eq!(g.m(), h.m());
        for (u, v) in g.edges() {
            prop_assert!(h.has_edge(p.apply(u), p.apply(v)));
        }
        // double relabel with inverse returns the original
        prop_assert_eq!(h.relabel(&p.inverse()), g);
    }

    #[test]
    fn every_ordering_is_a_valid_permutation(g in arb_graph(40, 120), seed in any::<u64>()) {
        for o in gorder::orders::all(seed) {
            let p = o.compute(&g);
            prop_assert_eq!(p.len(), g.n());
            let mut seen = vec![false; g.n() as usize];
            for u in g.nodes() {
                let t = p.apply(u) as usize;
                prop_assert!(!seen[t], "{} duplicates target {}", o.name(), t);
                seen[t] = true;
            }
        }
    }

    #[test]
    fn invariant_algorithms_survive_relabeling(g in arb_graph(40, 120), seed in any::<u64>()) {
        let p = arb_perm(g.n(), seed);
        let h = g.relabel(&p);
        let src = g.max_degree_node().unwrap_or(0);
        let ctx_g = RunCtx { source: Some(src), pr_iterations: 5, diameter_samples: 2, ..Default::default() };
        let ctx_h = RunCtx { source: Some(p.apply(src)), ..ctx_g.clone() };
        for name in ["NQ", "BFS", "SCC", "SP", "Kcore"] {
            let a = gorder::algos::by_name(name).unwrap();
            prop_assert_eq!(a.run(&g, &ctx_g), a.run(&h, &ctx_h), "{} not invariant", name);
        }
    }

    #[test]
    fn f_score_of_agrees_with_relabel(g in arb_graph(30, 80), seed in any::<u64>(), w in 1u32..8) {
        use gorder_core::score::{f_score, f_score_of};
        let p = arb_perm(g.n(), seed);
        prop_assert_eq!(f_score_of(&g, &p, w), f_score(&g.relabel(&p), w));
    }

    #[test]
    fn binary_io_roundtrip(g in arb_graph(40, 120)) {
        use gorder::graph::io::{read_binary, write_binary};
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn edge_list_io_roundtrip(g in arb_graph(40, 120)) {
        use gorder::graph::io::{read_edge_list, write_edge_list};
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        // trailing isolated nodes are not representable in an edge list;
        // compare edge sets and the populated prefix
        prop_assert_eq!(g.edge_vec(), h.edge_vec());
        prop_assert!(h.n() <= g.n());
    }

    #[test]
    fn compression_roundtrip(g in arb_graph(50, 200)) {
        use gorder::graph::compress::CompressedGraph;
        let c = CompressedGraph::compress(&g);
        prop_assert_eq!(c.decompress(), g);
    }

    #[test]
    fn induced_subgraph_edges_are_exactly_internal(
        g in arb_graph(40, 150),
        keep_mask in proptest::collection::vec(any::<bool>(), 40),
    ) {
        use gorder::graph::subgraph::induced;
        let keep: Vec<u32> = (0..g.n()).filter(|&u| keep_mask[u as usize]).collect();
        let sub = induced(&g, &keep);
        prop_assert_eq!(sub.graph.n() as usize, keep.len());
        // every subgraph edge maps back to a parent edge
        for (a, b) in sub.graph.edges() {
            prop_assert!(g.has_edge(sub.to_original(a), sub.to_original(b)));
        }
        // every internal parent edge appears in the subgraph
        let expected = g
            .edges()
            .filter(|&(u, v)| keep.contains(&u) && keep.contains(&v))
            .count() as u64;
        prop_assert_eq!(sub.graph.m(), expected);
    }

    #[test]
    fn incremental_extension_is_always_valid(
        g in arb_graph(40, 120),
        split in 2u32..35,
    ) {
        use gorder::core::{Gorder, IncrementalGorder};
        use gorder::graph::GraphBuilder;
        let n = g.n();
        let k = split.min(n);
        let mut b = GraphBuilder::new(k);
        for (u, v) in g.edges().filter(|&(u, v)| u < k && v < k) {
            b.add_edge(u, v);
        }
        let prefix = b.build();
        let base = Gorder::with_defaults().compute(&prefix);
        let mut inc = IncrementalGorder::new(&base);
        inc.extend(&g);
        let perm = inc.permutation();
        prop_assert_eq!(perm.len(), n);
        let mut seen = vec![false; n as usize];
        for u in 0..n {
            let p = perm.apply(u) as usize;
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn edge_list_with_garbage_line_always_errs(
        g in arb_graph(20, 60),
        pos in any::<usize>(),
        junk in "[a-z?!]{1,8}",
    ) {
        use gorder::graph::io::{read_edge_list, write_edge_list};
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        // splice a non-comment garbage line at an arbitrary line boundary
        let mut lines: Vec<&str> = std::str::from_utf8(&buf).unwrap().lines().collect();
        let at = pos % (lines.len() + 1);
        lines.insert(at, &junk);
        let corrupted = lines.join("\n");
        match read_edge_list(corrupted.as_bytes()) {
            Err(gorder::graph::io::GraphIoError::Parse { line, .. }) => {
                prop_assert_eq!(line, at + 1, "error should name the spliced line");
            }
            other => prop_assert!(false, "expected Parse error, got {:?}", other.map(|g| g.n())),
        }
    }

    #[test]
    fn edge_list_with_huge_id_always_errs(
        g in arb_graph(20, 60),
        big in (u32::MAX as u64)..u64::MAX,
    ) {
        use gorder::graph::io::{read_edge_list, write_edge_list, GraphIoError};
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let corrupted = format!("{}0 {big}\n", std::str::from_utf8(&buf).unwrap());
        match read_edge_list(corrupted.as_bytes()) {
            Err(GraphIoError::IdOutOfRange { value, .. }) => prop_assert_eq!(value, big),
            other => prop_assert!(false, "expected IdOutOfRange, got {:?}", other.map(|g| g.n())),
        }
    }

    #[test]
    fn truncated_binary_always_errs(g in arb_graph(40, 120), cut in any::<usize>()) {
        use gorder::graph::io::{read_binary, write_binary};
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // the format has a fixed total size, so every strict prefix is bad
        buf.truncate(cut % buf.len());
        prop_assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn truncated_matrix_market_always_errs(g in arb_graph(30, 80), cut in any::<usize>()) {
        use gorder::graph::io_mm::{read_matrix_market, write_matrix_market};
        prop_assume!(g.m() > 0);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        // cut before the final entry line starts: at least one declared
        // entry is missing, so the header count can never be satisfied
        let text = std::str::from_utf8(&buf).unwrap();
        let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;
        buf.truncate(cut % last_line_start);
        prop_assert!(read_matrix_market(&buf[..]).is_err());
    }

    #[test]
    fn matrix_market_with_huge_id_always_errs(
        g in arb_graph(20, 60),
        big in (u32::MAX as u64)..u64::MAX,
    ) {
        use gorder::graph::io_mm::{read_matrix_market, write_matrix_market};
        use gorder::graph::io::GraphIoError;
        prop_assume!(g.m() > 0);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        // overwrite the last entry with a coordinate beyond the declared dims
        let text = std::str::from_utf8(&buf).unwrap();
        let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;
        let corrupted = format!("{}1 {big}\n", &text[..last_line_start]);
        prop_assert!(matches!(
            read_matrix_market(corrupted.as_bytes()),
            Err(GraphIoError::IdOutOfRange { .. })
        ));
    }

    #[test]
    fn readers_never_panic_on_junk(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // robustness: arbitrary input may error, must not panic
        let _ = gorder::graph::io::read_edge_list(&bytes[..]);
        let _ = gorder::graph::io::read_binary(&bytes[..]);
        let _ = gorder::graph::io_mm::read_matrix_market(&bytes[..]);
    }

    #[test]
    fn readers_never_panic_on_junk_text(text in "[ -~\n]{0,256}") {
        let _ = gorder::graph::io::read_edge_list(text.as_bytes());
        let _ = gorder::graph::io_mm::read_matrix_market(text.as_bytes());
    }

    #[test]
    fn unit_heap_pops_in_key_order(ops in proptest::collection::vec((0u32..32, 0u8..3), 1..300)) {
        use gorder_core::UnitHeap;
        let mut h = UnitHeap::new(32);
        let mut keys = vec![0i64; 32];
        let mut alive = [true; 32];
        for (u, kind) in ops {
            match kind {
                0 | 1 => {
                    h.increment(u);
                    if alive[u as usize] { keys[u as usize] += 1; }
                }
                _ => {
                    if alive[u as usize] && keys[u as usize] > 0 {
                        h.decrement(u);
                        keys[u as usize] -= 1;
                    }
                }
            }
        }
        // draining pops must be non-increasing in (true) key
        let mut last: Option<i64> = None;
        while let Some(u) = h.pop_max() {
            let k = keys[u as usize];
            alive[u as usize] = false;
            if let Some(prev) = last {
                prop_assert!(k <= prev, "pop order violated: {} after {}", k, prev);
            }
            last = Some(k);
        }
        prop_assert!(alive.iter().all(|&a| !a));
    }
}
