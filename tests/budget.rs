//! Budget-exhaustion quality invariants: anytime orderings cut off
//! mid-computation must still return valid bijections, and must not fall
//! below the ChDFS rung of the degradation ladder (Gorder → ChDFS →
//! Original) on the paper's quality function F.

use gorder_core::budget::{Budget, DegradeReason, ExecOutcome};
use gorder_core::score::f_score_of;
use gorder_core::Gorder;
use gorder_graph::{Graph, Permutation};
use gorder_orders::{Annealing, ChDfs, EnergyModel, OrderingAlgorithm};

const WINDOW: u32 = 5;

/// A 24×24 grid, row-major ids, each cell linked both ways to its right
/// and down neighbours. Deterministic, with a natural order that is
/// already cache-friendly — the identity start of the annealer is a
/// strong anytime fallback here.
fn grid() -> Graph {
    let side = 24u32;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let u = r * side + c;
            if c + 1 < side {
                edges.push((u, u + 1));
                edges.push((u + 1, u));
            }
            if r + 1 < side {
                edges.push((u, u + side));
                edges.push((u + side, u));
            }
        }
    }
    Graph::from_edges(side * side, &edges)
}

fn assert_valid_bijection(perm: &Permutation, g: &Graph) {
    assert_eq!(perm.len(), g.n());
    assert!(Permutation::try_new(perm.as_slice().to_vec()).is_ok());
}

#[test]
fn budget_exhausted_gorder_is_no_worse_than_chdfs() {
    let g = grid();
    let chdfs_f = f_score_of(&g, &ChDfs.compute(&g), WINDOW);
    // Cut Gorder off at several points of its greedy pass, including 0
    // (pure ChDFS fallback) and beyond n (never exhausted).
    for cap in [0u64, 128, 256, 1 << 20] {
        let budget = Budget::unlimited().with_node_cap(cap);
        let (perm, degraded) = match Gorder::with_defaults().compute_budgeted(&g, &budget) {
            ExecOutcome::Completed(p) => (p, false),
            ExecOutcome::Degraded(p, DegradeReason::NodeCapReached) => (p, true),
            other => panic!("unexpected outcome {}", other.status_label()),
        };
        assert_eq!(degraded, cap < u64::from(g.n()), "cap = {cap}");
        assert_valid_bijection(&perm, &g);
        let f = f_score_of(&g, &perm, WINDOW);
        assert!(
            f >= chdfs_f,
            "cap = {cap}: F = {f} fell below ChDFS's {chdfs_f}"
        );
    }
}

#[test]
fn budget_exhausted_annealing_is_no_worse_than_chdfs() {
    // Work on a graph already laid out by a full Gorder pass, so the
    // annealer's identity start is a Gorder-quality arrangement. The
    // anytime contract guarantees the degraded result is never worse
    // than that start, which comfortably beats ChDFS on F.
    let base = grid();
    let gorder_perm = match Gorder::with_defaults().compute_budgeted(&base, &Budget::unlimited()) {
        ExecOutcome::Completed(p) => p,
        other => panic!(
            "unlimited Gorder should complete, got {}",
            other.status_label()
        ),
    };
    let g = base.relabel(&gorder_perm);
    let chdfs_f = f_score_of(&g, &ChDfs.compute(&g), WINDOW);
    // A huge annealing run cut off almost immediately.
    let annealer = Annealing::with_params(EnergyModel::Linear, 100_000_000, 1.0, 7);
    let budget = Budget::unlimited().with_node_cap(2048);
    let perm = match annealer.compute_budgeted(&g, &budget) {
        ExecOutcome::Degraded(p, DegradeReason::NodeCapReached) => p,
        other => panic!(
            "expected Degraded(NodeCapReached), got {}",
            other.status_label()
        ),
    };
    assert_valid_bijection(&perm, &g);
    let f = f_score_of(&g, &perm, WINDOW);
    assert!(f >= chdfs_f, "F = {f} fell below ChDFS's {chdfs_f}");
}
