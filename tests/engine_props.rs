//! Property-based tests for the kernel execution engine: every paper
//! kernel run through [`gorder_engine::run_by_name`] must produce
//! relabeling-invariant results (checksums where the underlying quantity
//! is invariant, structural properties where it is not), and the
//! `gorder-algos` wrappers must agree with the engine exactly.

use gorder::prelude::*;
use gorder_algos::RunCtx;
use gorder_engine::{run_by_name, run_by_name_plan, ExecPlan};
use proptest::prelude::*;

/// Strategy: a directed graph with up to `max_n` nodes and `max_m` edges.
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

/// Strategy: a valid permutation of n elements from a shuffle seed.
fn arb_perm(n: u32, seed: u64) -> Permutation {
    use rand::SeedableRng;
    Permutation::random(n, &mut rand::rngs::StdRng::seed_from_u64(seed))
}

/// A fast context for property runs: few PR iterations, few Diam samples.
fn quick_ctx(source: Option<u32>) -> RunCtx {
    RunCtx {
        source,
        pr_iterations: 5,
        diameter_samples: 2,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Kernels whose checksums hash relabeling-invariant quantities must
    // return bit-identical checksums on an isomorphic copy (with the
    // source mapped through the permutation for the rooted traversals).
    #[test]
    fn integer_kernels_invariant_under_relabel(g in arb_graph(60, 200), seed in any::<u64>()) {
        let p = arb_perm(g.n(), seed);
        let h = g.relabel(&p);
        let src = g.max_degree_node().unwrap_or(0);
        let ctx_g = quick_ctx(Some(src));
        let ctx_h = quick_ctx(Some(p.apply(src)));
        for name in ["NQ", "BFS", "SP", "SCC", "Kcore"] {
            let rg = run_by_name(name, &g, &ctx_g).expect("paper kernel");
            let rh = run_by_name(name, &h, &ctx_h).expect("paper kernel");
            prop_assert_eq!(rg.checksum, rh.checksum, "{} checksum not invariant", name);
        }
    }

    // PageRank values (floating point, so not hashed exactly) must map
    // through the permutation up to accumulated rounding error.
    #[test]
    fn pagerank_values_map_through_relabel(g in arb_graph(50, 150), seed in any::<u64>()) {
        use gorder_engine::kernels::pagerank::pagerank;
        let p = arb_perm(g.n(), seed);
        let h = g.relabel(&p);
        let rg = pagerank(&g, 30, 0.85);
        let rh = pagerank(&h, 30, 0.85);
        for u in g.nodes() {
            let a = rg.rank[u as usize];
            let b = rh.rank[p.apply(u) as usize];
            prop_assert!((a - b).abs() < 1e-9, "node {}: {} vs {}", u, a, b);
        }
    }

    // Diameter from explicitly mapped sources is an integer quantity and
    // must be exactly invariant (the seeded sampler picks by node id, so
    // invariance only holds when the sources are pinned).
    #[test]
    fn diameter_invariant_with_mapped_sources(g in arb_graph(50, 150), seed in any::<u64>()) {
        use gorder_engine::kernels::diameter::diameter_from_sources;
        let p = arb_perm(g.n(), seed);
        let h = g.relabel(&p);
        let sources: Vec<u32> = (0..g.n()).step_by(7).collect();
        let mapped: Vec<u32> = sources.iter().map(|&u| p.apply(u)).collect();
        let dg = diameter_from_sources(&g, &sources);
        let dh = diameter_from_sources(&h, &mapped);
        prop_assert_eq!(dg.lower_bound, dh.lower_bound);
    }

    // DFS discovery order is id-dependent, so its checksum is not
    // invariant — but the traversal must stay deterministic and scan
    // every edge exactly once on any relabeling.
    #[test]
    fn dfs_deterministic_and_scans_every_edge(g in arb_graph(60, 200), seed in any::<u64>()) {
        let p = arb_perm(g.n(), seed);
        let ctx = quick_ctx(None);
        for graph in [&g, &g.relabel(&p)] {
            let a = run_by_name("DFS", graph, &ctx).expect("paper kernel");
            let b = run_by_name("DFS", graph, &ctx).expect("paper kernel");
            prop_assert_eq!(a.checksum, b.checksum, "DFS not deterministic");
            prop_assert_eq!(a.stats.edges_relaxed, graph.m(), "DFS must scan each edge once");
        }
    }

    // Greedy dominating-set tie-breaks by id, so the chosen set may
    // differ across relabelings — but it must always dominate.
    #[test]
    fn dominating_set_dominates_any_relabeling(g in arb_graph(60, 200), seed in any::<u64>()) {
        use gorder_engine::kernels::domset::dominating_set;
        let p = arb_perm(g.n(), seed);
        let h = g.relabel(&p);
        let r = dominating_set(&h);
        let mut covered = vec![false; h.n() as usize];
        for &u in &r.set {
            covered[u as usize] = true;
            for &v in h.out_neighbors(u) {
                covered[v as usize] = true;
            }
        }
        for u in h.nodes() {
            prop_assert!(covered[u as usize], "node {} not dominated", u);
        }
    }

    // Parallel plans are a scheduling decision only: at any thread count,
    // every kernel must return the serial checksum and the serial work
    // counters on arbitrary graphs.
    #[test]
    fn parallel_plans_never_change_results(g in arb_graph(60, 200), threads in 2u32..8) {
        let ctx = quick_ctx(None);
        let plan = ExecPlan::with_threads(threads);
        for name in ["NQ", "BFS", "DFS", "SCC", "SP", "PR", "DS", "Kcore", "Diam"] {
            let serial = run_by_name(name, &g, &ctx).expect("paper kernel");
            let par = run_by_name_plan(name, &g, &ctx, plan).expect("paper kernel");
            prop_assert_eq!(serial.checksum, par.checksum, "{} checksum at {} threads", name, threads);
            prop_assert_eq!(serial.stats.iterations, par.stats.iterations, "{} iterations", name);
            prop_assert_eq!(serial.stats.edges_relaxed, par.stats.edges_relaxed, "{} edges", name);
            prop_assert_eq!(par.stats.threads_used, threads, "{} threads_used", name);
        }
    }

    // Relabeling and parallelising commute: for the invariant kernels, a
    // parallel run on an isomorphic copy (source mapped through the
    // permutation) must equal the serial run on the original.
    #[test]
    fn relabel_and_parallelize_commute(g in arb_graph(60, 200), seed in any::<u64>(), threads in 1u32..8) {
        let p = arb_perm(g.n(), seed);
        let h = g.relabel(&p);
        let src = g.max_degree_node().unwrap_or(0);
        let ctx_g = quick_ctx(Some(src));
        let ctx_h = quick_ctx(Some(p.apply(src)));
        let plan = ExecPlan::with_threads(threads);
        for name in ["NQ", "BFS", "SP", "SCC", "Kcore"] {
            let serial_g = run_by_name(name, &g, &ctx_g).expect("paper kernel");
            let par_h = run_by_name_plan(name, &h, &ctx_h, plan).expect("paper kernel");
            prop_assert_eq!(
                serial_g.checksum, par_h.checksum,
                "{} serial-on-g vs {}-thread-on-relabel", name, threads
            );
        }
    }

    // PageRank's determinism contract is bit-level: the parallel rank
    // vector must equal the serial one at `f64::to_bits` granularity on
    // arbitrary graphs and thread counts.
    #[test]
    fn pagerank_parallel_is_bit_identical(g in arb_graph(50, 150), threads in 2u32..8) {
        use gorder_engine::kernels::pagerank::pagerank_with_plan;
        let serial = pagerank_with_plan(&g, 20, 0.85, ExecPlan::Serial);
        let par = pagerank_with_plan(&g, 20, 0.85, ExecPlan::with_threads(threads));
        for u in g.nodes() {
            prop_assert_eq!(
                serial.rank[u as usize].to_bits(),
                par.rank[u as usize].to_bits(),
                "node {} at {} threads", u, threads
            );
        }
    }

    // Every `gorder-algos` wrapper must agree exactly with the engine
    // kernel it delegates to — checksum and counters alike.
    #[test]
    fn algos_wrappers_agree_with_engine(g in arb_graph(40, 120), seed in any::<u64>()) {
        let p = arb_perm(g.n(), seed);
        let h = g.relabel(&p);
        let ctx = quick_ctx(Some(h.max_degree_node().unwrap_or(0)));
        for name in ["NQ", "BFS", "DFS", "SP", "PR", "DS", "Kcore", "SCC", "Diam"] {
            let a = gorder::algos::by_name(name).expect("paper algorithm");
            let (checksum, stats) = a.run_stats(&h, &ctx);
            let run = run_by_name(name, &h, &ctx).expect("paper kernel");
            prop_assert_eq!(checksum, run.checksum, "{} checksum drifts", name);
            // phase timings are wall-clock, so compare the counters only
            let counters = |s: &gorder_algos::KernelStats| {
                (s.iterations, s.edges_relaxed, s.frontier_pushes, s.frontier_peak)
            };
            prop_assert_eq!(counters(&stats), counters(&run.stats), "{} counters drift", name);
        }
    }
}
