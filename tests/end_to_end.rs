//! End-to-end integration: datasets → orderings → algorithms, checking
//! that every ordering preserves every algorithm's (relabeling-invariant)
//! results — the property that makes reordering a *transparent*
//! optimisation, which is the paper's whole premise.

use gorder::prelude::*;
use gorder_algos::RunCtx;

/// Every ordering × every algorithm on a small dataset: invariant
/// checksums must agree across all orderings (with the source node mapped
/// through each permutation).
#[test]
fn all_orderings_preserve_algorithm_results() {
    let g = gorder::graph::datasets::epinion_like().build(0.1);
    let logical_source = g.max_degree_node().unwrap();
    let base = RunCtx {
        pr_iterations: 10,
        diameter_samples: 3,
        ..Default::default()
    };
    // DS greedy and Diam (random sources in label space) are not
    // relabeling-invariant; everything else is.
    let invariant = ["NQ", "BFS", "SCC", "SP", "PR", "Kcore"];
    let mut reference: Vec<Option<u64>> = vec![None; invariant.len()];
    for ordering in gorder::orders::all(7) {
        let perm = ordering.compute(&g);
        let rg = g.relabel(&perm);
        let ctx = RunCtx {
            source: Some(perm.apply(logical_source)),
            ..base.clone()
        };
        for (i, name) in invariant.iter().enumerate() {
            let algo = gorder::algos::by_name(name).unwrap();
            let checksum = algo.run(&rg, &ctx);
            match reference[i] {
                None => reference[i] = Some(checksum),
                Some(expected) => assert_eq!(
                    checksum,
                    expected,
                    "{name} differs under {}",
                    ordering.name()
                ),
            }
        }
    }
}

/// DFS runs under every ordering without panicking and visits everything.
#[test]
fn dfs_runs_under_every_ordering() {
    let g = gorder::graph::datasets::epinion_like().build(0.05);
    for ordering in gorder::orders::all(3) {
        let rg = g.relabel(&ordering.compute(&g));
        let r = gorder_algos::dfs::dfs(&rg, 0);
        assert_eq!(r.preorder.len() as u32, g.n(), "{}", ordering.name());
    }
}

/// The full quickstart workflow: order, relabel, verify structure and
/// locality objective improvement on a shuffled structured graph.
#[test]
fn quickstart_workflow() {
    use gorder_core::score::f_score_of;
    let base = gorder::graph::datasets::wiki_like().build(0.02);
    // destroy the built-in locality first so the comparison is fair
    let shuffle = Permutation::random(base.n(), &mut seeded(11));
    let g = base.relabel(&shuffle);

    let perm = GorderBuilder::new().window(5).build().compute(&g);
    let rg = g.relabel(&perm);
    assert_eq!(rg.n(), g.n());
    assert_eq!(rg.m(), g.m());
    let f_before = f_score_of(&g, &Permutation::identity(g.n()), 5);
    let f_after = f_score_of(&g, &perm, 5);
    assert!(
        f_after > f_before,
        "gorder must beat the shuffled arrangement: {f_after} vs {f_before}"
    );
}

/// Degrees are preserved (as multisets / per logical node) by every
/// ordering's relabeling.
#[test]
fn degree_sequences_preserved() {
    let g = gorder::graph::datasets::livejournal_like().build(0.02);
    for ordering in gorder::orders::all(1) {
        let perm = ordering.compute(&g);
        let rg = g.relabel(&perm);
        for u in g.nodes() {
            assert_eq!(
                g.out_degree(u),
                rg.out_degree(perm.apply(u)),
                "{}: out-degree of {u}",
                ordering.name()
            );
            assert_eq!(
                g.in_degree(u),
                rg.in_degree(perm.apply(u)),
                "{}: in-degree of {u}",
                ordering.name()
            );
        }
    }
}

fn seeded(s: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(s)
}
