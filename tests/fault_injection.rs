//! Injected-fault acceptance test for the fault-tolerant execution layer:
//! a sweep containing a deliberately panicking ordering and an annealing
//! run whose budget cannot possibly suffice must still complete every
//! healthy cell, report the panicked cells as failed and the annealing
//! cells as degraded (or abandoned), and return normally.

use gorder_bench::robust::guarded_ordering;
use gorder_bench::{run_grid_robust_with, CellStatus, GridConfig};
use gorder_core::budget::{Budget, ExecOutcome};
use gorder_graph::datasets::epinion_like;
use gorder_graph::{Graph, Permutation};
use gorder_orders::{Annealing, EnergyModel, OrderingAlgorithm};
use std::sync::Arc;
use std::time::Duration;

struct Panicker;
impl OrderingAlgorithm for Panicker {
    fn name(&self) -> &'static str {
        "Panicker"
    }
    fn compute(&self, _g: &Graph) -> Permutation {
        panic!("injected ordering fault")
    }
}

/// An annealing configuration far too large for any test-scale budget.
fn oversized_annealing() -> Annealing {
    Annealing::with_params(EnergyModel::Linear, 50_000_000, 1.0, 3)
}

fn tiny_cfg() -> GridConfig {
    GridConfig {
        scale: 0.02,
        reps: 1,
        seed: 1,
        quick: true,
        datasets: vec![epinion_like()],
        orderings: None,
        algos: Some(vec!["NQ".into(), "BFS".into()]),
        extended: false,
        threads: 1,
    }
}

#[test]
fn sweep_with_injected_faults_completes_and_reports() {
    let cfg = tiny_cfg();
    let pool: Vec<Arc<dyn OrderingAlgorithm>> = vec![
        Arc::new(gorder_orders::Original),
        Arc::new(Panicker),
        Arc::new(oversized_annealing()),
        Arc::new(gorder_orders::ChDfs),
    ];
    let report = run_grid_robust_with(&cfg, Some(Duration::from_millis(50)), false, pool);

    // Every cell of the 4 × 2 grid is present — the sweep never died.
    assert_eq!(report.cells.len(), 8);

    let statuses = |ordering: &str| -> Vec<&CellStatus> {
        report
            .cells
            .iter()
            .filter(|c| c.result.ordering == ordering)
            .map(|c| &c.status)
            .collect()
    };

    // Healthy orderings complete despite their broken neighbours.
    for s in statuses("Original").iter().chain(statuses("ChDFS").iter()) {
        assert_eq!(**s, CellStatus::Completed);
    }

    // The panicking ordering's cells are failed, with the panic message.
    let panicked = statuses("Panicker");
    assert_eq!(panicked.len(), 2);
    for s in panicked {
        match s {
            CellStatus::Failed(msg) => assert!(msg.contains("injected ordering fault"), "{msg}"),
            other => panic!("Panicker cell should be Failed, got {}", other.label()),
        }
    }

    // The over-budget annealing either degraded cooperatively (its cells
    // still carry usable numbers) or was abandoned by the watchdog.
    let annealing = statuses("MinLA");
    assert_eq!(annealing.len(), 2);
    for s in annealing {
        assert!(
            matches!(s, CellStatus::Degraded(_) | CellStatus::TimedOut),
            "annealing cell should be Degraded or TimedOut, got {}",
            s.label()
        );
    }

    report.print_skip_report();
}

#[test]
fn one_millisecond_annealing_budget_degrades_not_dies() {
    let g = epinion_like().build(0.02);
    let budget = Budget::unlimited().with_timeout(Duration::from_millis(1));
    match oversized_annealing().compute_budgeted(&g, &budget) {
        ExecOutcome::Degraded(perm, _) => {
            // The anytime result is a valid bijection over the full graph.
            assert!(Permutation::try_new(perm.as_slice().to_vec()).is_ok());
            assert_eq!(perm.len(), g.n());
        }
        ExecOutcome::TimedOut => {} // budget gone before the first step
        other => panic!(
            "1 ms annealing should degrade or time out, got {}",
            other.status_label()
        ),
    }
}

#[test]
fn guarded_panicking_ordering_is_isolated() {
    let g = Arc::new(epinion_like().build(0.02));
    let o: Arc<dyn OrderingAlgorithm> = Arc::new(Panicker);
    match guarded_ordering(&o, &g, Some(Duration::from_secs(5))) {
        ExecOutcome::Failed(msg) => assert!(msg.contains("injected ordering fault"), "{msg}"),
        other => panic!("expected Failed, got {}", other.status_label()),
    }
}
