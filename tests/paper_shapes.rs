//! The paper's headline qualitative claims, asserted at test scale.
//!
//! These are the "does the reproduction actually reproduce" tests: each
//! encodes one shape from the evaluation (see DESIGN.md §5) on small
//! instances of the bundled datasets, using the cache simulator where the
//! paper used hardware counters. They are deliberately coarse — factors,
//! not absolute values — so they stay robust across platforms.

use gorder::cachesim::trace::{pagerank as traced_pr, replay, TraceCtx};
use gorder::cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder::prelude::*;
use std::collections::HashMap;

fn l1_miss_rate(g: &Graph, perm: &Permutation) -> f64 {
    let rg = g.relabel(perm);
    let mut t = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
    traced_pr(
        &rg,
        &mut t,
        &TraceCtx {
            pr_iterations: 3,
            ..Default::default()
        },
    );
    t.stats().l1_miss_rate
}

fn miss_rates_per_ordering(g: &Graph, seed: u64) -> HashMap<String, f64> {
    gorder::orders::all(seed)
        .iter()
        .map(|o| (o.name().to_string(), l1_miss_rate(g, &o.compute(g))))
        .collect()
}

/// Tables 3–4 shape: Gorder has the lowest PR miss rate, Random the
/// highest, Original in between, on a social and a web dataset.
#[test]
fn cache_table_shape() {
    for d in [
        gorder::graph::datasets::flickr_like(),
        gorder::graph::datasets::pldarc_like(),
    ] {
        let g = d.build(0.15);
        let mr = miss_rates_per_ordering(&g, 5);
        let gorder = mr["Gorder"];
        let random = mr["Random"];
        let original = mr["Original"];
        assert!(
            gorder < original && original < random,
            "{}: expected Gorder < Original < Random, got {gorder:.3} / {original:.3} / {random:.3}",
            d.name
        );
        assert!(
            random > gorder * 1.1,
            "{}: Random should be clearly worse than Gorder ({random:.3} vs {gorder:.3})",
            d.name
        );
    }
}

/// Figure 1 shape: under Gorder every algorithm keeps roughly the same
/// CPU work but stalls less, so modelled totals drop.
#[test]
fn fig1_shape() {
    let g = gorder::graph::datasets::sdarc_like().build(0.05);
    let perm = GorderBuilder::new().build().compute(&g);
    let rg = g.relabel(&perm);
    let ctx = TraceCtx {
        pr_iterations: 4,
        diameter_samples: 2,
        ..Default::default()
    };
    let model = StallModel::skylake();
    let mut improved = 0;
    let names = gorder::cachesim::trace::TRACED_ALGOS;
    for name in names {
        let run = |graph: &Graph| {
            let mut t = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
            replay(name, graph, &mut t, &ctx).unwrap();
            t.breakdown(&model)
        };
        let before = run(&g);
        let after = run(&rg);
        // CPU work identical up to bookkeeping noise
        let cpu_ratio = after.cpu_cycles / before.cpu_cycles.max(1.0);
        assert!(
            (0.8..1.25).contains(&cpu_ratio),
            "{name}: CPU work should not change materially ({cpu_ratio:.2})"
        );
        if after.total() < before.total() {
            improved += 1;
        }
    }
    assert!(
        improved >= 7,
        "Gorder should reduce modelled total time for most algorithms: {improved}/9"
    );
}

/// Figure 5/6 shape on one dataset: the modelled-time ranking puts Gorder
/// at or near the top and Random at the bottom for PageRank.
#[test]
fn fig5_pr_ranking_shape() {
    let g = gorder::graph::datasets::wiki_like().build(0.06);
    let mr = miss_rates_per_ordering(&g, 9);
    let mut ranked: Vec<(&String, &f64)> = mr.iter().collect();
    // total_cmp, not partial_cmp().unwrap(): a NaN miss rate should fail
    // the ranking assertions below, not panic the comparator.
    ranked.sort_by(|a, b| a.1.total_cmp(b.1));
    let names: Vec<&str> = ranked.iter().map(|(n, _)| n.as_str()).collect();
    let pos = |n: &str| names.iter().position(|&x| x == n).unwrap();
    assert!(pos("Gorder") <= 2, "Gorder should rank top-3: {names:?}");
    assert!(
        pos("Random") >= names.len() - 2,
        "Random should rank bottom-2: {names:?}"
    );
}

/// Regression for the fig5 ranking sort above: a degenerate miss-rate
/// table (NaN from a 0/0 rate, infinities) must sort without panicking,
/// with NaN ordered deterministically last rather than poisoning the
/// comparator.
#[test]
fn ranking_sort_tolerates_non_finite_rates() {
    let mut ranked = [
        ("nan".to_string(), f64::NAN),
        ("ok".to_string(), 0.5),
        ("inf".to_string(), f64::INFINITY),
    ];
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    let names: Vec<&str> = ranked.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["ok", "inf", "nan"]);
}

/// Table 2 shape: trivial orderings are much cheaper than Gorder, and
/// annealing is the same order of magnitude as Gorder (both dominate the
/// cheap ones).
#[test]
fn ordering_cost_shape() {
    use std::time::Instant;
    let g = gorder::graph::datasets::pokec_like().build(0.2);
    let time_of = |name: &str| {
        let o = gorder::orders::by_name(name, 3).unwrap();
        let t = Instant::now();
        let _ = o.compute(&g);
        t.elapsed().as_secs_f64()
    };
    let cheap = time_of("InDegSort") + time_of("ChDFS");
    let gorder = time_of("Gorder");
    assert!(
        gorder > 3.0 * cheap,
        "Gorder ({gorder:.4}s) must cost well above InDegSort+ChDFS ({cheap:.4}s)"
    );
}

/// Figure 4 shape: the Gorder objective F(π) is higher when evaluated at
/// the window the ordering was built for than a mismatched tiny window's
/// ordering achieves there — i.e. the window parameter matters.
#[test]
fn window_matters_shape() {
    use gorder::core::score::f_score_of;
    let g = gorder::graph::datasets::flickr_like().build(0.06);
    let w_eval = 16;
    let built_small = GorderBuilder::new().window(1).build().compute(&g);
    let built_matched = GorderBuilder::new().window(w_eval).build().compute(&g);
    let f_small = f_score_of(&g, &built_small, w_eval);
    let f_matched = f_score_of(&g, &built_matched, w_eval);
    assert!(
        f_matched > f_small,
        "matched window should score higher: {f_matched} vs {f_small}"
    );
}

/// Compression shape (discussion): Gorder compresses the graph better
/// than a random order does.
#[test]
fn compression_shape() {
    use gorder::graph::compress::CompressedGraph;
    use rand::SeedableRng;
    let g = gorder::graph::datasets::sdarc_like().build(0.04);
    let gorder_bits =
        CompressedGraph::compress(&g.relabel(&GorderBuilder::new().build().compute(&g)))
            .bits_per_edge();
    let random_bits = CompressedGraph::compress(&g.relabel(&Permutation::random(
        g.n(),
        &mut rand::rngs::StdRng::seed_from_u64(2),
    )))
    .bits_per_edge();
    assert!(
        gorder_bits < random_bits,
        "Gorder should compress better: {gorder_bits:.2} vs {random_bits:.2} bits/edge"
    );
}
