//! Differential suite for the engine's parallel execution layer: every
//! kernel, on every generated graph family and under every ordering,
//! must produce **byte-identical** results and identical work counters
//! at any thread count. Parallelism is a scheduling decision, never an
//! accuracy knob — this suite is what makes that contract enforceable.
//!
//! `GORDER_TEST_THREADS` (the CI matrix variable) adds an extra thread
//! count to the built-in {1, 2, 3, 7} sweep.

use gorder_algos::RunCtx;
use gorder_engine::kernels::{bfs, diameter, kcore, pagerank};
use gorder_engine::{run_by_name, run_by_name_plan, ExecPlan};
use gorder_graph::gen::{erdos_renyi, web_graph, WebGraphConfig};
use gorder_graph::Graph;

/// The nine paper kernels, in presentation order.
const KERNELS: [&str; 9] = ["NQ", "BFS", "DFS", "SCC", "SP", "PR", "DS", "Kcore", "Diam"];

/// Thread counts under test: serial, even, odd, and more-than-cores-ish;
/// plus whatever the CI matrix pins via `GORDER_TEST_THREADS`.
fn thread_counts() -> Vec<u32> {
    let mut counts = vec![1, 2, 3, 7];
    if let Some(extra) = std::env::var("GORDER_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        if extra > 0 && !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn quick_ctx() -> RunCtx {
    RunCtx {
        pr_iterations: 5,
        diameter_samples: 3,
        ..Default::default()
    }
}

/// One representative of each generated family the repo benchmarks on:
/// host-structured web, uniform ER, and a regular 2-D grid (the shape
/// that stresses level-synchronous BFS with wide frontiers).
fn test_graphs() -> Vec<(&'static str, Graph)> {
    let web = web_graph(WebGraphConfig {
        n: 300,
        mean_host_size: 12,
        seed: 5,
        ..Default::default()
    });
    let er = erdos_renyi(250, 800, 7);
    let side = 16u32;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let u = r * side + c;
            if c + 1 < side {
                edges.push((u, u + 1));
                edges.push((u + 1, u));
            }
            if r + 1 < side {
                edges.push((u, u + side));
                edges.push((u + side, u));
            }
        }
    }
    let grid = Graph::from_edges(side * side, &edges);
    vec![("web", web), ("er", er), ("grid", grid)]
}

/// Serial vs parallel over the full (graph × ordering × kernel × threads)
/// cross product: checksums and work counters must match exactly, and the
/// run must report the thread count it was given.
#[test]
fn every_kernel_matches_serial_under_every_ordering_and_thread_count() {
    let ctx = quick_ctx();
    let counts = thread_counts();
    for (family, g) in test_graphs() {
        for o in gorder_orders::all(42) {
            let perm = o.compute(&g);
            let rg = g.relabel(&perm);
            for name in KERNELS {
                let serial = run_by_name(name, &rg, &ctx).expect("paper kernel");
                for &t in &counts {
                    let par = run_by_name_plan(name, &rg, &ctx, ExecPlan::with_threads(t))
                        .expect("paper kernel");
                    let tag = format!("{name} on {family}/{} at {t} threads", o.name());
                    assert_eq!(serial.checksum, par.checksum, "{tag}: checksum");
                    assert_eq!(
                        serial.stats.iterations, par.stats.iterations,
                        "{tag}: iterations"
                    );
                    assert_eq!(
                        serial.stats.edges_relaxed, par.stats.edges_relaxed,
                        "{tag}: edges_relaxed"
                    );
                    assert_eq!(par.stats.threads_used, t, "{tag}: threads_used");
                }
            }
        }
    }
}

/// The result vectors themselves — not just checksums — must be
/// byte-identical: PageRank compared at the `f64::to_bits` level, BFS by
/// full visit order and depths, Kcore by core numbers, Diam by estimate
/// and sampled sources.
#[test]
fn parallel_result_vectors_are_byte_identical() {
    for (family, g) in test_graphs() {
        let serial_pr = pagerank::pagerank_with_plan(&g, 20, 0.85, ExecPlan::Serial);
        let serial_bfs = bfs::bfs_with_plan(&g, 0, ExecPlan::Serial);
        let serial_kcore = kcore::kcore_with_plan(&g, ExecPlan::Serial);
        let serial_diam = diameter::diameter_with_plan(&g, 5, 42, ExecPlan::Serial);
        // Filter by value, not position: the serial baseline is "t == 1"
        // wherever it sits, including a GORDER_TEST_THREADS-appended 1.
        for t in thread_counts().into_iter().filter(|&t| t > 1) {
            let plan = ExecPlan::with_threads(t);
            let pr = pagerank::pagerank_with_plan(&g, 20, 0.85, plan);
            let bits = |r: &pagerank::PageRankResult| -> Vec<u64> {
                r.rank.iter().map(|x| x.to_bits()).collect()
            };
            assert_eq!(
                bits(&serial_pr),
                bits(&pr),
                "PR ranks drift on {family} at {t} threads"
            );
            assert_eq!(
                serial_bfs,
                bfs::bfs_with_plan(&g, 0, plan),
                "BFS visit order drifts on {family} at {t} threads"
            );
            assert_eq!(
                serial_kcore,
                kcore::kcore_with_plan(&g, plan),
                "Kcore drifts on {family} at {t} threads"
            );
            assert_eq!(
                serial_diam,
                diameter::diameter_with_plan(&g, 5, 42, plan),
                "Diam drifts on {family} at {t} threads"
            );
        }
    }
}

/// Degenerate graphs must run (not panic) at every thread count: an
/// empty row range split across workers is the classic off-by-one trap.
#[test]
fn degenerate_graphs_run_at_every_thread_count() {
    let ctx = quick_ctx();
    let degenerates = [
        ("empty", Graph::empty(0)),
        ("single", Graph::empty(1)),
        ("isolated", Graph::empty(64)),
    ];
    for (label, g) in &degenerates {
        for &t in &thread_counts() {
            for name in KERNELS {
                let run = run_by_name_plan(name, g, &ctx, ExecPlan::with_threads(t))
                    .expect("paper kernel");
                let serial = run_by_name(name, g, &ctx).expect("paper kernel");
                assert_eq!(
                    serial.checksum, run.checksum,
                    "{name} on {label} at {t} threads"
                );
            }
        }
    }
}
