//! Golden-output tests for the machine-readable surfaces other tools
//! consume: the fig5/table2 CSV headers and the `--stats` JSON key
//! sequence. Snapshots live under `tests/golden/`; a mismatch means the
//! schema drifted — either update the snapshot *and* every reader
//! (fig6's multi-generation header list, downstream scripts), or revert
//! the drift. Silent changes are exactly what this file exists to stop.

use gorder_bench::schema::{FIG5_HEADER, FIG5_KNOWN_HEADERS, TABLE2_HEADER};
use gorder_cli::run_algorithm_budgeted;
use gorder_graph::Graph;
use std::path::Path;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()))
}

#[test]
fn fig5_csv_header_matches_golden() {
    assert_eq!(
        FIG5_HEADER.join(","),
        golden("fig5_header.txt").trim_end(),
        "fig5 CSV schema drifted; update tests/golden/fig5_header.txt AND \
         the fig6 reader's known-generation list together"
    );
}

#[test]
fn table2_csv_header_matches_golden() {
    assert_eq!(
        TABLE2_HEADER.join(","),
        golden("table2_header.txt").trim_end(),
        "table2 CSV schema drifted; update tests/golden/table2_header.txt"
    );
}

#[test]
fn fig6_reader_accepts_the_written_generation() {
    // The two-generation trap this suite was built for: fig5 writes a new
    // column but fig6's accept-list still only knows the old headers, so
    // cached grids silently fall back to a full re-run.
    assert!(
        FIG5_KNOWN_HEADERS.contains(&FIG5_HEADER),
        "fig6 would reject the CSV fig5 currently writes"
    );
}

/// Extracts the top-level key sequence from the one-line stats JSON
/// object: a `"key":` at bracket depth 1 (values may be strings or
/// arrays, so both depth and in-string state are tracked).
fn top_level_keys(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += if bytes[j] == b'\\' { 2 } else { 1 };
                }
                if depth == 1 && bytes.get(j + 1) == Some(&b':') {
                    keys.push(line[start..j].to_string());
                }
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    keys
}

#[test]
fn stats_json_keys_match_golden() {
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
    let out = run_algorithm_budgeted(&g, "BFS", None, 5, 1, None, 2).unwrap();
    let line = out.stats_json.expect("run emits a stats line");
    let want: Vec<String> = golden("stats_keys.txt")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(
        top_level_keys(&line),
        want,
        "--stats JSON schema drifted; update tests/golden/stats_keys.txt \
         and notify downstream consumers (line: {line})"
    );
}

#[test]
fn key_extractor_handles_strings_and_arrays() {
    let keys = top_level_keys(r#"{"a":"x:y","b":[1,2],"c":{"inner":1},"d":null}"#);
    assert_eq!(keys, vec!["a", "b", "c", "d"]);
}

#[test]
fn gate_report_schema_matches_golden() {
    use gorder_bench::gate::{render_report, run_gate, GateConfig, GateMode};

    // A tiny grid — the schema is identical to the CI-pinned one.
    let mut cfg = GateConfig::pinned(GateMode::Sim);
    cfg.scale = 0.02;
    cfg.datasets = vec!["epinion".into()];
    cfg.orderings = vec!["Original".into(), "Gorder".into()];
    cfg.algos = vec!["NQ".into()];
    let text = render_report(&run_gate(&cfg).expect("tiny gate run"));

    // Pin both the file structure (one manifest, then gate cells, then
    // order records) and the per-kind top-level key order.
    let mut kinds: Vec<String> = Vec::new();
    let mut keys: std::collections::BTreeMap<String, String> = Default::default();
    for line in text.lines() {
        let obj = gorder_obs::json::parse_object(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        let kind = obj["kind"].trim_matches('"').to_string();
        if kinds.last() != Some(&kind) {
            kinds.push(kind.clone());
        }
        keys.entry(kind)
            .or_insert_with(|| top_level_keys(line).join(","));
    }
    let mut got = format!("kinds: {}\n", kinds.join(","));
    for (kind, k) in &keys {
        got.push_str(&format!("{kind}: {k}\n"));
    }
    assert_eq!(
        got,
        golden("gate_schema.txt"),
        "BENCH_gate.json schema drifted; update tests/golden/gate_schema.txt, \
         bump gorder_obs::SCHEMA_VERSION, and regenerate committed baselines \
         with `gorder-bench gate --update`"
    );
}

#[test]
fn trace_jsonl_keys_match_golden() {
    use gorder_obs::json::parse_object;
    use gorder_obs::{
        CellEvent, GateEvent, KernelEvent, OrderEvent, PhaseEvent, Registry, RowEvent, RunManifest,
        ServeEvent, TraceEvent, TraceSink, SCHEMA_VERSION,
    };

    assert_eq!(
        SCHEMA_VERSION, 5,
        "bumping the trace schema version requires regenerating \
         tests/golden/trace_keys.txt and notifying trace consumers"
    );

    // One line of every kind the sink can emit, through the real writer.
    let mut manifest = RunManifest::new("golden", "cfg");
    manifest.dataset = Some("d".into());
    manifest.ordering = Some("Gorder".into());
    manifest.algo = Some("BFS".into());
    manifest.window = Some(5);
    let reg = Registry::new();
    reg.counter_add("c", 1);
    reg.gauge_set("g", 2.0);
    reg.observe("h", &[1.0, 2.0], 1.5);
    reg.span("s").finish();
    let mut sink = TraceSink::new(Vec::new());
    sink.manifest(&manifest).unwrap();
    sink.event(&TraceEvent::Cell(CellEvent {
        dataset: "d".into(),
        ordering: "Gorder".into(),
        algo: "BFS".into(),
        status: "completed".into(),
        seconds: 0.5,
        checksum: 7,
    }))
    .unwrap();
    sink.event(&TraceEvent::Kernel(KernelEvent {
        algo: "BFS".into(),
        ordering: "Gorder".into(),
        checksum: 7,
        seconds: 0.5,
        engine: "serial".into(),
        iterations: 3,
        edges_relaxed: 9,
        frontier_pushes: 4,
        frontier_peak: 2,
        init_secs: 0.1,
        compute_secs: 0.3,
        finish_secs: 0.1,
        threads_used: 1,
        thread_busy_secs: 0.0,
        degraded_serial: false,
    }))
    .unwrap();
    sink.event(&TraceEvent::Phase(PhaseEvent {
        name: "order".into(),
        seconds: 0.2,
    }))
    .unwrap();
    sink.event(&TraceEvent::Gate(GateEvent {
        mode: "sim".into(),
        dataset: "d".into(),
        ordering: "Gorder".into(),
        algo: "BFS".into(),
        checksum: 7,
        iterations: 3,
        edges_relaxed: 9,
        refs: 100,
        level_misses: vec![10, 5, 2],
        mem_accesses: 2,
        ops: 40,
        reuse_total: 90,
        reuse_sum: 1234.0,
        reuse_counts: vec![80, 10],
        pairs: 0,
        speedup: 0.0,
        sign_p: 0.0,
        ci_lo: 0.0,
        ci_hi: 0.0,
    }))
    .unwrap();
    sink.event(&TraceEvent::Order(OrderEvent {
        dataset: Some("d".into()),
        name: "Gorder".into(),
        params: "w=5".into(),
        seed: 42,
        graph_digest: 0xabcd,
        identity: "graph=000000000000abcd,order=Gorder,params=w=5,seed=42".into(),
        status: "completed".into(),
        seconds: 0.2,
        nodes_placed: 6,
        heap_increments: 10,
        heap_decrements: 2,
        heap_pops: 6,
        threads_used: 1,
        cache_hit: false,
    }))
    .unwrap();
    sink.event(&TraceEvent::Row(RowEvent {
        table: "fig5.csv".into(),
        key: "d|BFS|Gorder".into(),
        cells: vec!["d".into(), "BFS".into(), "Gorder".into()],
    }))
    .unwrap();
    sink.event(&TraceEvent::Serve(ServeEvent {
        op: "run".into(),
        dataset: Some("d".into()),
        ordering: Some("Gorder".into()),
        algo: Some("BFS".into()),
        status: "ok".into(),
        tier: Some("cache".into()),
        degraded_serial: false,
        queue_secs: 0.001,
        seconds: 0.5,
        checksum: 7,
    }))
    .unwrap();
    sink.metrics(&reg.snapshot()).unwrap();
    let text = String::from_utf8(sink.into_inner()).unwrap();

    let mut seen: std::collections::BTreeMap<String, String> = Default::default();
    for line in text.lines() {
        let obj = parse_object(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        let kind = obj["kind"].trim_matches('"').to_string();
        seen.entry(kind)
            .or_insert_with(|| top_level_keys(line).join(","));
    }
    let got: String = seen
        .iter()
        .map(|(kind, keys)| format!("{kind}: {keys}\n"))
        .collect();
    assert_eq!(
        got,
        golden("trace_keys.txt"),
        "trace JSONL schema drifted; update tests/golden/trace_keys.txt, \
         bump gorder_obs::SCHEMA_VERSION, and notify trace consumers"
    );
}
