//! Golden-output tests for the machine-readable surfaces other tools
//! consume: the fig5/table2 CSV headers and the `--stats` JSON key
//! sequence. Snapshots live under `tests/golden/`; a mismatch means the
//! schema drifted — either update the snapshot *and* every reader
//! (fig6's multi-generation header list, downstream scripts), or revert
//! the drift. Silent changes are exactly what this file exists to stop.

use gorder_bench::schema::{FIG5_HEADER, FIG5_KNOWN_HEADERS, TABLE2_HEADER};
use gorder_cli::run_algorithm_budgeted;
use gorder_graph::Graph;
use std::path::Path;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()))
}

#[test]
fn fig5_csv_header_matches_golden() {
    assert_eq!(
        FIG5_HEADER.join(","),
        golden("fig5_header.txt").trim_end(),
        "fig5 CSV schema drifted; update tests/golden/fig5_header.txt AND \
         the fig6 reader's known-generation list together"
    );
}

#[test]
fn table2_csv_header_matches_golden() {
    assert_eq!(
        TABLE2_HEADER.join(","),
        golden("table2_header.txt").trim_end(),
        "table2 CSV schema drifted; update tests/golden/table2_header.txt"
    );
}

#[test]
fn fig6_reader_accepts_the_written_generation() {
    // The two-generation trap this suite was built for: fig5 writes a new
    // column but fig6's accept-list still only knows the old headers, so
    // cached grids silently fall back to a full re-run.
    assert!(
        FIG5_KNOWN_HEADERS.contains(&FIG5_HEADER),
        "fig6 would reject the CSV fig5 currently writes"
    );
}

/// Extracts the top-level key sequence from the one-line stats JSON
/// object: a `"key":` at bracket depth 1 (values may be strings or
/// arrays, so both depth and in-string state are tracked).
fn top_level_keys(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += if bytes[j] == b'\\' { 2 } else { 1 };
                }
                if depth == 1 && bytes.get(j + 1) == Some(&b':') {
                    keys.push(line[start..j].to_string());
                }
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    keys
}

#[test]
fn stats_json_keys_match_golden() {
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
    let out = run_algorithm_budgeted(&g, "BFS", None, 5, 1, None, 2).unwrap();
    let line = out.stats_json.expect("run emits a stats line");
    let want: Vec<String> = golden("stats_keys.txt")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(
        top_level_keys(&line),
        want,
        "--stats JSON schema drifted; update tests/golden/stats_keys.txt \
         and notify downstream consumers (line: {line})"
    );
}

#[test]
fn key_extractor_handles_strings_and_arrays() {
    let keys = top_level_keys(r#"{"a":"x:y","b":[1,2],"c":{"inner":1},"d":null}"#);
    assert_eq!(keys, vec!["a", "b", "c", "d"]);
}
