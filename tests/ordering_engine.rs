//! Differential tests for the unified ordering engine: every ordering in
//! the extended registry, run through [`run_by_name_plan`], must produce
//! a permutation identical to the pre-refactor direct `compute()` call —
//! under the serial plan **and** under `threads = 4` (plans never change
//! results) — with populated [`OrderStats`].

use gorder_core::budget::Budget;
use gorder_graph::gen::{erdos_renyi, web_graph, WebGraphConfig};
use gorder_graph::Graph;
use gorder_orders::{extended_names, extensions, run_by_name_plan, ExecPlan, OrderingRun};

const SEED: u64 = 13;

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "web",
            web_graph(WebGraphConfig {
                n: 400,
                mean_host_size: 12,
                seed: 3,
                ..Default::default()
            }),
        ),
        ("er", erdos_renyi(300, 1200, 5)),
        ("tiny", Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)])),
        ("empty", Graph::empty(0)),
    ]
}

fn run(name: &str, g: &Graph, plan: ExecPlan) -> OrderingRun {
    run_by_name_plan(name, SEED, g, plan, &Budget::unlimited())
        .unwrap_or_else(|| panic!("{name} missing from the registry"))
        .value()
        .unwrap_or_else(|| panic!("{name} did not complete under an unlimited budget"))
}

#[test]
fn runner_matches_direct_compute_for_every_ordering() {
    for (tag, g) in graphs() {
        for o in extensions::extended(SEED) {
            let direct = o.compute(&g);
            for threads in [1u32, 4] {
                let got = run(o.name(), &g, ExecPlan::with_threads(threads));
                assert_eq!(
                    got.perm.as_slice(),
                    direct.as_slice(),
                    "{} on {tag} diverged from direct compute at threads = {threads}",
                    o.name()
                );
            }
        }
    }
}

#[test]
fn runner_returns_populated_stats() {
    let (_, g) = graphs().remove(0);
    for name in extended_names() {
        for threads in [1u32, 4] {
            let got = run(name, &g, ExecPlan::with_threads(threads));
            let s = got.stats;
            assert_eq!(
                s.nodes_placed,
                u64::from(g.n()),
                "{name} placed the wrong node count"
            );
            assert!(s.threads_used >= 1, "{name} reported zero threads");
            assert!(
                s.compute_secs >= 0.0 && s.compute_secs.is_finite(),
                "{name} timing is broken"
            );
            assert!(!s.degraded, "{name} degraded under an unlimited budget");
            assert!(!s.cache_hit, "nothing here touches a cache");
        }
    }
    // The heap counters are a Gorder-family signal: populated there,
    // zero for orderings that never touch the unit heap.
    let gorder = run("Gorder", &g, ExecPlan::Serial).stats;
    assert!(gorder.heap_pops > 0 && gorder.heap_increments > 0);
    let rcm = run("RCM", &g, ExecPlan::Serial).stats;
    assert_eq!(rcm.heap_pops, 0);
}

#[test]
fn unknown_names_resolve_to_none() {
    let g = Graph::from_edges(3, &[(0, 1)]);
    assert!(run_by_name_plan("Metis", SEED, &g, ExecPlan::Serial, &Budget::unlimited()).is_none());
}
