//! Golden permutation digests: every ordering in the extended registry,
//! on one representative of each generated family (web / ER / grid), at
//! threads {1, 4}, must keep producing the exact permutation it produced
//! when `tests/golden/perm_digests.txt` was committed.
//!
//! This is the proof obligation for hot-path work on the Gorder build
//! loop (delta coalescing, heap changes, partition refactors): such
//! optimisations must be **permutation-preserving**, and a digest drift
//! here means tie-breaking or placement order changed, not just speed.
//! The digests were generated *before* the coalesced-delta optimisation
//! landed, so they pin the original per-unit-update semantics.
//!
//! Regenerate (only when an ordering's output is *intentionally*
//! changed) with:
//!
//! ```text
//! GORDER_UPDATE_GOLDENS=1 cargo test --test golden_perms
//! ```

use gorder_core::budget::Budget;
use gorder_graph::gen::{erdos_renyi, web_graph, WebGraphConfig};
use gorder_graph::Graph;
use gorder_orders::{extended_names, run_by_name_plan, ExecPlan};
use std::path::PathBuf;

const SEED: u64 = 13;

/// Same three-family set as the parallel differential suite: a
/// host-structured web graph, uniform ER, and a regular 2-D grid.
fn test_graphs() -> Vec<(&'static str, Graph)> {
    let web = web_graph(WebGraphConfig {
        n: 300,
        mean_host_size: 12,
        seed: 5,
        ..Default::default()
    });
    let er = erdos_renyi(250, 800, 7);
    let side = 16u32;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let u = r * side + c;
            if c + 1 < side {
                edges.push((u, u + 1));
                edges.push((u + 1, u));
            }
            if r + 1 < side {
                edges.push((u, u + side));
                edges.push((u + side, u));
            }
        }
    }
    let grid = Graph::from_edges(side * side, &edges);
    vec![("web", web), ("er", er), ("grid", grid)]
}

/// FNV-1a over the permutation's `old id → new id` map, little-endian.
fn perm_digest(perm: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in perm {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/perm_digests.txt")
}

fn render_current() -> String {
    let mut out = String::new();
    for (tag, g) in test_graphs() {
        for name in extended_names() {
            for threads in [1u32, 4] {
                let run = run_by_name_plan(
                    name,
                    SEED,
                    &g,
                    ExecPlan::with_threads(threads),
                    &Budget::unlimited(),
                )
                .unwrap_or_else(|| panic!("{name} missing from the registry"))
                .value()
                .unwrap_or_else(|| panic!("{name} failed under an unlimited budget"));
                out.push_str(&format!(
                    "{tag} {name} t={threads} {:016x}\n",
                    perm_digest(run.perm.as_slice())
                ));
            }
        }
    }
    out
}

#[test]
fn registry_covers_fourteen_orderings() {
    assert_eq!(
        extended_names().len(),
        14,
        "the extended registry grew or shrank; regenerate perm_digests.txt \
         and update this count"
    );
}

#[test]
fn permutations_match_golden_digests() {
    let current = render_current();
    let path = golden_path();
    if std::env::var_os("GORDER_UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &current).expect("write golden digests");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    for (got, expect) in current.lines().zip(want.lines()) {
        assert_eq!(
            got, expect,
            "permutation drifted from its committed digest — an ordering \
             changed its output; if intentional, regenerate with \
             GORDER_UPDATE_GOLDENS=1 cargo test --test golden_perms"
        );
    }
    assert_eq!(
        current.lines().count(),
        want.lines().count(),
        "digest line count changed; regenerate tests/golden/perm_digests.txt"
    );
}
