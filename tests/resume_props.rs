//! Property tests for crash-safe sweep resume: truncate a synthetic
//! trace at an **arbitrary byte offset** and require that recovery is
//! exact — every fully-written line before the cut is recovered, nothing
//! past the cut leaks in, replayed lines never double-count, and a
//! config-hash mismatch is always fatal. These are the invariants the
//! SIGKILL integration test (`crates/bench/tests/crash_resume.rs`)
//! exercises once; here they hold for every cut point proptest can find.

use gorder_bench::ResumeState;
use gorder_obs::trace::config_hash;
use gorder_obs::{CellEvent, RowEvent, RunManifest, TraceEvent};
use proptest::prelude::*;

const CFG: &str = "tool=prop,seed=1";

/// One logical grid cell of the synthetic sweep: a `cell` line followed
/// by its verbatim `row` line, as the harness binaries emit them.
#[derive(Debug, Clone)]
struct PairSpec {
    completed: bool,
    seconds: f64,
    checksum: u64,
}

fn arb_pairs() -> impl Strategy<Value = Vec<PairSpec>> {
    proptest::collection::vec(
        (any::<bool>(), any::<u32>(), any::<u64>()).prop_map(|(completed, millis, checksum)| {
            PairSpec {
                completed,
                seconds: f64::from(millis) / 1000.0,
                checksum,
            }
        }),
        1..12,
    )
}

fn cell_line(i: usize, p: &PairSpec) -> String {
    TraceEvent::Cell(CellEvent {
        dataset: format!("d{i}"),
        ordering: format!("o{i}"),
        algo: format!("a{i}"),
        status: if p.completed {
            "completed"
        } else {
            "timed-out"
        }
        .to_string(),
        seconds: p.seconds,
        checksum: p.checksum,
    })
    .to_json_line()
}

fn row_line(i: usize, p: &PairSpec) -> String {
    TraceEvent::Row(RowEvent {
        table: "t.csv".to_string(),
        key: format!("k{i}"),
        cells: vec![format!("d{i}"), format!("{:.6}", p.seconds)],
    })
    .to_json_line()
}

/// Builds the synthetic trace text plus, per pair, the byte offsets at
/// which the cell line's and the row line's content ends (exclusive of
/// the trailing newline): a line is fully written iff the cut is at or
/// past its content end.
fn build_trace(pairs: &[PairSpec]) -> (String, Vec<(usize, usize)>) {
    let mut text = RunManifest::new("prop", CFG).to_json_line();
    text.push('\n');
    let mut ends = Vec::new();
    for (i, p) in pairs.iter().enumerate() {
        text.push_str(&cell_line(i, p));
        let cell_end = text.len();
        text.push('\n');
        text.push_str(&row_line(i, p));
        let row_end = text.len();
        text.push('\n');
        ends.push((cell_end, row_end));
    }
    (text, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_recovers_exactly_the_fully_written_prefix(
        pairs in arb_pairs(),
        cut_seed in any::<usize>(),
    ) {
        let expected = config_hash(CFG);
        let (text, ends) = build_trace(&pairs);
        // any cut from "manifest line survived" to "nothing lost"
        let manifest_nl = text.find('\n').unwrap() + 1;
        let cut = manifest_nl + cut_seed % (text.len() - manifest_nl + 1);
        let s = ResumeState::parse(&text[..cut], expected)
            .unwrap_or_else(|e| panic!("cut at {cut} must parse: {e}"));
        for (i, (p, &(cell_end, row_end))) in pairs.iter().zip(&ends).enumerate() {
            let rec = s.completed_cell(&format!("d{i}"), &format!("o{i}"), &format!("a{i}"));
            if cut >= cell_end && p.completed {
                let rec = rec.unwrap_or_else(|| panic!("pair {i} lost (cut {cut})"));
                prop_assert_eq!(rec.seconds, p.seconds, "pair {} seconds drifted", i);
                prop_assert_eq!(rec.checksum, p.checksum, "pair {} checksum drifted", i);
            } else {
                // never resurrect a cell past the cut, and never promote
                // a timed-out cell to completed
                prop_assert!(rec.is_none(), "pair {} wrongly recovered (cut {})", i, cut);
            }
            let row = s.row("t.csv", &format!("k{i}"));
            if cut >= row_end {
                prop_assert_eq!(
                    row.unwrap_or_else(|| panic!("row {i} lost (cut {cut})")),
                    &[format!("d{i}"), format!("{:.6}", p.seconds)][..],
                    "row {} cells drifted", i
                );
            } else {
                prop_assert!(row.is_none(), "row {} leaked past the cut {}", i, cut);
            }
        }
        // a cut at a line boundary is not a torn line
        if text[..cut].ends_with('\n') || cut == manifest_nl - 1 {
            prop_assert!(!s.truncated_final_line);
        }
    }

    #[test]
    fn replayed_lines_never_double_count(pairs in arb_pairs()) {
        // A resumed run re-emits every recovered line, so a trace from a
        // crash-during-resume contains each line twice. Recovery must be
        // idempotent: same counts, same values.
        let expected = config_hash(CFG);
        let (text, _) = build_trace(&pairs);
        let manifest_nl = text.find('\n').unwrap() + 1;
        let mut doubled = text.clone();
        doubled.push_str(&text[manifest_nl..]);
        let once = ResumeState::parse(&text, expected).unwrap();
        let twice = ResumeState::parse(&doubled, expected).unwrap();
        prop_assert_eq!(once.cell_count(), twice.cell_count());
        prop_assert_eq!(once.row_count(), twice.row_count());
        for (i, p) in pairs.iter().enumerate() {
            let key = (format!("d{i}"), format!("o{i}"), format!("a{i}"));
            let a = once.completed_cell(&key.0, &key.1, &key.2);
            let b = twice.completed_cell(&key.0, &key.1, &key.2);
            prop_assert_eq!(a.map(|c| (c.seconds, c.checksum)), b.map(|c| (c.seconds, c.checksum)));
            prop_assert_eq!(once.row("t.csv", &format!("k{i}")), twice.row("t.csv", &format!("k{i}")));
            let _ = p;
        }
    }

    #[test]
    fn mismatched_config_hash_is_always_fatal(pairs in arb_pairs(), salt in any::<u64>()) {
        let (text, _) = build_trace(&pairs);
        let wrong = config_hash(CFG).wrapping_add(salt | 1);
        match ResumeState::parse(&text, wrong) {
            Err(e) => prop_assert!(e.contains("config_hash mismatch"), "{}", e),
            Ok(_) => prop_assert!(false, "a differently-configured trace must not resume"),
        }
    }

    #[test]
    fn cut_inside_the_manifest_is_always_fatal(pairs in arb_pairs(), cut_seed in any::<usize>()) {
        // Losing the first line means losing the config hash: such a
        // trace can never prove it belongs to this invocation.
        let expected = config_hash(CFG);
        let (text, _) = build_trace(&pairs);
        let manifest_len = text.find('\n').unwrap();
        let cut = cut_seed % manifest_len; // strictly inside line 1
        prop_assert!(ResumeState::parse(&text[..cut], expected).is_err());
    }
}
