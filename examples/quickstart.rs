//! Quickstart: reorder a graph with Gorder and watch PageRank get faster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gorder::cachesim::trace::{pagerank as traced_pr, TraceCtx};
use gorder::cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder::prelude::*;
use gorder_algos::pagerank::Pr;
use gorder_core::score::f_score_of;
use std::time::Instant;

fn main() {
    // 1. Get a graph. Any directed edge list works (see `gorder::graph::io`);
    //    here we use one of the bundled synthetic dataset recipes.
    let graph = gorder::graph::datasets::flickr_like().build(0.2);
    println!("graph: {} nodes, {} edges", graph.n(), graph.m());

    // 2. Compute the Gorder permutation (window w = 5, the paper default).
    let t0 = Instant::now();
    let gorder = GorderBuilder::new().window(5).build();
    let perm = gorder.compute(&graph);
    println!("gorder computed in {:.2?}", t0.elapsed());

    // 3. The permutation maximises the paper's locality objective F(π).
    let w = 5;
    println!(
        "F(π): original = {}, gorder = {}",
        f_score_of(&graph, &Permutation::identity(graph.n()), w),
        f_score_of(&graph, &perm, w),
    );

    // 4. Materialise the reordered graph and run an unmodified algorithm
    //    on both layouts — identical results, different memory behaviour.
    let reordered = graph.relabel(&perm);
    let ctx = RunCtx {
        pr_iterations: 50,
        ..Default::default()
    };
    let pr = Pr;
    assert_eq!(pr.run(&graph, &ctx), pr.run(&reordered, &ctx), "same ranks");

    // 5. Where the speedup comes from: cache behaviour. The simulator
    //    shows the per-layout profile on any machine; raw wall clock only
    //    shows it when the graph exceeds your LLC (this demo graph is far
    //    too small for that — run your own billion-edge graph for the
    //    paper's 10-50 % wall-clock wins).
    let profile = |g: &Graph| {
        let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
        traced_pr(
            g,
            &mut tracer,
            &TraceCtx {
                pr_iterations: 5,
                ..Default::default()
            },
        );
        let stats = tracer.stats();
        let stall = tracer.breakdown(&StallModel::skylake());
        (stats.l1_miss_rate, stall.stall_fraction(), stall.total())
    };
    let (mr_orig, stall_orig, cyc_orig) = profile(&graph);
    let (mr_gord, stall_gord, cyc_gord) = profile(&reordered);
    println!("\nPageRank cache profile (simulated, scaled hierarchy):");
    println!(
        "  original: L1 miss {:.1}%, stalled {:.0}% of cycles",
        mr_orig * 100.0,
        stall_orig * 100.0
    );
    println!(
        "  gorder:   L1 miss {:.1}%, stalled {:.0}% of cycles",
        mr_gord * 100.0,
        stall_gord * 100.0
    );
    println!("  modelled speedup: {:.2}x", cyc_orig / cyc_gord);
}
