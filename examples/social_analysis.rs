//! Social-network scenario: run a small analytics pipeline (reachability,
//! community cores, influencer cover) over a social graph, comparing the
//! paper's strongest orderings on each stage — the "many algorithms, one
//! ordering" workflow that motivates amortising Gorder's cost.
//!
//! ```sh
//! cargo run --release --example social_analysis
//! ```

use gorder::orders::{ChDfs, Rcm};
use gorder::prelude::*;
use gorder_algos::domset::dominating_set;
use gorder_algos::kcore::kcore;
use gorder_algos::scc::scc;
use std::time::Instant;

fn main() {
    let graph = gorder::graph::datasets::pokec_like().build(0.3);
    println!("social graph: {} users, {} links", graph.n(), graph.m());

    // Structure of the network (order-independent answers).
    let comps = scc(&graph);
    println!(
        "strongly connected components: {} (largest holds {:.0}% of users)",
        comps.count(),
        100.0 * f64::from(comps.largest()) / f64::from(graph.n())
    );
    let cores = kcore(&graph);
    println!("degeneracy (max k-core): {}", cores.degeneracy());
    let ds = dominating_set(&graph);
    println!(
        "greedy influencer cover: {} users dominate the network",
        ds.size()
    );

    // The same pipeline under four orderings: how much does layout matter?
    let orderings: Vec<(&str, Permutation)> = vec![
        ("Original", Permutation::identity(graph.n())),
        ("RCM", Rcm.compute(&graph)),
        ("ChDFS", ChDfs.compute(&graph)),
        ("Gorder", GorderBuilder::new().build().compute(&graph)),
    ];
    println!("\npipeline wall time per ordering (SCC + Kcore + DS):");
    let mut baseline = None;
    for (name, perm) in orderings {
        let rg = graph.relabel(&perm);
        // warm-up pass, then a measured pass
        run_pipeline(&rg);
        let t = Instant::now();
        let (nscc, degen, cover) = run_pipeline(&rg);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(nscc, comps.count());
        assert_eq!(degen, cores.degeneracy());
        let rel = baseline.get_or_insert(secs);
        println!(
            "  {name:<9} {secs:.3}s  ({:.2}x vs Original; cover size {cover})",
            secs / *rel
        );
    }
    println!("\n(identical analytics, up to tens of percent faster purely from layout)");
}

fn run_pipeline(g: &Graph) -> (u32, u32, u32) {
    let comps = scc(g);
    let cores = kcore(g);
    let ds = dominating_set(g);
    (comps.count(), cores.degeneracy(), ds.size())
}
