//! Evolving-network scenario: keep a Gorder-quality layout while the
//! graph grows, without paying the full reordering cost each time — the
//! workflow the paper's discussion asks for ("networks evolve and require
//! constant recomputation of the node ordering").
//!
//! ```sh
//! cargo run --release --example evolving_network
//! ```

use gorder::core::score::f_score_of;
use gorder::core::IncrementalGorder;
use gorder::prelude::*;
use gorder_graph::gen::{preferential_attachment, PrefAttachConfig};
use gorder_graph::GraphBuilder;
use std::time::Instant;

/// The generator stopped at `k` nodes (edges among the first `k` only).
fn prefix(full: &Graph, k: u32) -> Graph {
    let mut b = GraphBuilder::new(k);
    for (u, v) in full.edges().filter(|&(u, v)| u < k && v < k) {
        b.add_edge(u, v);
    }
    b.build()
}

fn main() {
    let n_final = 8_000;
    let full = preferential_attachment(PrefAttachConfig {
        n: n_final,
        out_degree: 8,
        reciprocity: 0.3,
        uniform_mix: 0.1,
        closure_prob: 0.4,
        recency_bias: 0.3,
        seed: 11,
    });
    println!(
        "simulating growth to {n_final} users ({} links)\n",
        full.m()
    );

    // day 0: full Gorder on the initial network
    let day0 = prefix(&full, n_final / 2);
    let t = Instant::now();
    let base = GorderBuilder::new().build().compute(&day0);
    println!(
        "day 0: full Gorder on n = {} in {:.2?}",
        day0.n(),
        t.elapsed()
    );
    let mut maintained = IncrementalGorder::new(&base);

    // each "day", a batch of users joins; the maintainer splices them in
    let gorder = GorderBuilder::new().build();
    let w = 5;
    println!(
        "\n{:>6} {:>12} {:>12} {:>10}",
        "n", "incr time", "full time", "F retained"
    );
    for day in 1..=5u32 {
        let k = n_final / 2 + day * (n_final / 10);
        let today = prefix(&full, k);

        let t = Instant::now();
        maintained.extend(&today);
        let incr_time = t.elapsed();
        let incr_perm = maintained.permutation();

        let t = Instant::now();
        let full_perm = gorder.compute(&today);
        let full_time = t.elapsed();

        let retained =
            f_score_of(&today, &incr_perm, w) as f64 / f_score_of(&today, &full_perm, w) as f64;
        println!(
            "{:>6} {:>12.2?} {:>12.2?} {:>9.0}%",
            k,
            incr_time,
            full_time,
            retained * 100.0
        );
    }
    println!("\n(incremental maintenance costs a fraction of the recompute and");
    println!(" retains most of the layout quality; rerun the full Gorder when");
    println!(" the retained share drops below your threshold)");
}
