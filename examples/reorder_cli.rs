//! Command-line reordering tool — the workflow of the original Gorder
//! release (read an edge list, write the reordered edge list).
//!
//! ```sh
//! cargo run --release --example reorder_cli -- input.txt output.txt [ordering] [window]
//! ```
//!
//! `ordering` is any figure label from the zoo (`Gorder`, `RCM`, `ChDFS`,
//! `InDegSort`, `SlashBurn`, `LDG`, `MinLA`, `MinLogA`, `Random`,
//! `Original`; default `Gorder`); `window` applies to Gorder only
//! (default 5). With no arguments, runs a self-demo on a generated graph
//! in a temporary directory.

use gorder::graph::io;
use gorder::orders::gorder_impl::GorderOrdering;
use gorder::prelude::*;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (input, output, ordering_name, window) = match args.len() {
        0 => {
            // self-demo: write a sample graph to a temp dir first
            let dir = std::env::temp_dir().join("gorder_reorder_demo");
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let input = dir.join("input.txt");
            let g = gorder::graph::datasets::epinion_like().build(0.5);
            io::write_edge_list_path(&g, &input).expect("write demo graph");
            println!("demo mode: wrote sample graph to {}", input.display());
            (
                input.clone(),
                dir.join("reordered.txt"),
                "Gorder".to_string(),
                5,
            )
        }
        2..=4 => (
            PathBuf::from(&args[0]),
            PathBuf::from(&args[1]),
            args.get(2).cloned().unwrap_or_else(|| "Gorder".into()),
            args.get(3).and_then(|w| w.parse().ok()).unwrap_or(5),
        ),
        _ => {
            eprintln!("usage: reorder_cli <input.txt> <output.txt> [ordering] [window]");
            std::process::exit(2);
        }
    };

    let g = match io::read_edge_list_path(&input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot read {}: {e}", input.display());
            std::process::exit(1);
        }
    };
    println!("read {}: {} nodes, {} edges", input.display(), g.n(), g.m());

    let ordering: Box<dyn OrderingAlgorithm> = if ordering_name == "Gorder" {
        Box::new(GorderOrdering::with_window(window))
    } else {
        match gorder::orders::by_name(&ordering_name, 42) {
            Some(o) => o,
            None => {
                eprintln!("unknown ordering {ordering_name:?}; known:");
                for o in gorder::orders::all(42) {
                    eprintln!("  {}", o.name());
                }
                std::process::exit(2);
            }
        }
    };
    let t = std::time::Instant::now();
    let perm = ordering.compute(&g);
    println!("{ordering_name} computed in {:.2?}", t.elapsed());

    let reordered = g.relabel(&perm);
    if let Err(e) = io::write_edge_list_path(&reordered, &output) {
        eprintln!("cannot write {}: {e}", output.display());
        std::process::exit(1);
    }
    println!("wrote {}", output.display());
}
