//! Web-graph scenario: rank pages of a host-structured hyperlink graph
//! and attribute the reordering speedup to cache behaviour with the
//! simulator — the paper's intro use case (search-engine PageRank over a
//! crawl) end to end.
//!
//! ```sh
//! cargo run --release --example web_ranking
//! ```

use gorder::cachesim::trace::{pagerank as traced_pr, TraceCtx};
use gorder::cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder::prelude::*;
use gorder_algos::pagerank::pagerank;

fn main() {
    // A copying-model web graph with host-block locality (sdarc-like).
    let graph = gorder::graph::datasets::sdarc_like().build(0.05);
    println!("web graph: {} pages, {} hyperlinks", graph.n(), graph.m());

    // Rank pages.
    let ranks = pagerank(&graph, 50, 0.85);
    let top = ranks.top_node().expect("non-empty graph");
    println!(
        "top page: node {top} (rank {:.5}, in-degree {})",
        ranks.rank[top as usize],
        graph.in_degree(top)
    );

    // Compare cache behaviour of PageRank across three layouts.
    let orderings: Vec<(&str, Permutation)> = vec![
        ("Original", Permutation::identity(graph.n())),
        ("Random", Permutation::random(graph.n(), &mut rand_rng())),
        (
            "Gorder",
            GorderBuilder::new().window(5).build().compute(&graph),
        ),
    ];
    let model = StallModel::skylake();
    let ctx = TraceCtx {
        pr_iterations: 5,
        ..Default::default()
    };
    println!("\nPageRank cache profile (simulated, scaled-down hierarchy):");
    println!(
        "{:<10} {:>8} {:>8} {:>10}",
        "order", "L1-mr", "cache-mr", "stall-share"
    );
    for (name, perm) in orderings {
        let rg = graph.relabel(&perm);
        let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
        traced_pr(&rg, &mut tracer, &ctx);
        let s = tracer.stats();
        let b = tracer.breakdown(&model);
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>9.1}%",
            name,
            s.l1_miss_rate * 100.0,
            s.cache_miss_rate * 100.0,
            b.stall_fraction() * 100.0
        );
    }
    println!("\n(expect Gorder lowest on every column, Random highest)");
}

fn rand_rng() -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(7)
}
