//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the small slice of `rand` it actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::
//! seed_from_u64`], [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 of the real crate, so *streams differ
//! from upstream rand*, but every consumer in this workspace only relies
//! on determinism-given-seed and statistical quality, both of which hold.

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform for
    /// integers, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi`, half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable from a generator without extra parameters.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Widening-multiply rejection-free mapping keeps the bias
                // below 2^-64 — far finer than any consumer here observes.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Seedable generators (only the `seed_from_u64` entry point this
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 stream, used to expand seeds.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias — the shim has one generator for every role.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extensions (only `shuffle`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them in order");
    }
}
