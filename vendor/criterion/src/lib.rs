//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Provides the entry points this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — without the statistics engine: each benchmark is timed for a
//! handful of iterations and the median is printed. Good enough to keep
//! `--all-targets` compiling and to give rough numbers offline; use real
//! criterion for publishable measurements.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (benches here import
/// `std::hint::black_box` directly, but the re-export keeps parity).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[bench group] {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        run_one(&id.to_string(), self.sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upstream-compatible no-op (the stand-in times a fixed iteration
    /// count instead of a wall-clock budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API parity; dropping works too).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (for groups whose name carries the function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) times the
/// workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Times `f` for the configured number of iterations (plus one
    /// untimed warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.iterations {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one(label: &str, iterations: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iterations,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {label}: no samples (closure never called iter)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    eprintln!(
        "  {label}: median {median:.2?} over {} iters (total {total:.2?})",
        b.samples.len()
    );
}

/// Groups benchmark functions under one callable, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).bench_function("count", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
        }
        // one warm-up + three timed iterations
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_borrows() {
        let mut c = Criterion::default();
        let data = vec![1u32, 2, 3];
        let mut g = c.benchmark_group("inputs");
        g.sample_size(2)
            .bench_with_input(BenchmarkId::from_parameter("v"), &data, |b, d| {
                b.iter(|| d.iter().sum::<u32>())
            });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
