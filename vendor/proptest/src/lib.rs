//! Offline stand-in for `proptest` (1.x API subset).
//!
//! The build environment has no registry access, so this workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, [`any`], integer-range
//! and tuple strategies, [`collection::vec`], simple
//! character-class string patterns, and the `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! failing input is reported as generated — and string patterns support
//! only the `[class]{lo,hi}` shape the test-suite uses, not full regex.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeded from a test name (FNV-1a), so every test gets a stable,
    /// distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    fn gen_usize_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.inner.gen_range(0..bound)
        }
    }
}

/// A failed property check (carried out of the test body by the
/// `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a generated test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the result (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Types with a no-parameter "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy producing any value of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String strategy from a `[class]{lo,hi}` pattern (the supported subset
/// of proptest's regex strategies). The class accepts literal characters,
/// `a-z` ranges, and the escapes `\n`, `\t`, `\r`, `\\`, `\-`, `\]`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}: this offline proptest stand-in only supports \"[class]{{lo,hi}}\""));
        let len = lo + rng.gen_usize_below(hi - lo + 1);
        (0..len)
            .map(|_| chars[rng.gen_usize_below(chars.len())])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, counts) = rest.split_at(close);
    let counts = counts
        .strip_prefix(']')?
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi): (usize, usize) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if lo > hi {
        return None;
    }

    let mut chars: Vec<char> = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        let c = if c == '\\' {
            match it.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        if it.peek() == Some(&'-') && {
            let mut ahead = it.clone();
            ahead.next();
            ahead.peek().is_some()
        } {
            it.next(); // consume '-'
            let end = match it.next()? {
                '\\' => match it.next()? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                },
                other => other,
            };
            if (c as u32) > (end as u32) {
                return None;
            }
            chars.extend((c as u32..=end as u32).filter_map(char::from_u32));
        } else {
            chars.push(c);
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]: a fixed count or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — proptest's vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.gen_usize_below(span)
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import every proptest test starts with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Skips the rest of the current case when the assumption fails. The
/// offline stand-in counts a skipped case as a (vacuous) pass instead of
/// re-drawing inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Defines `#[test]` functions that run their body over many random
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]. Not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let outcome: $crate::TestCaseResult = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // the stringified condition may itself contain `{`/`}`; pass it
        // as an argument, never as a format string
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1_000 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_test("tuples");
        let (a, b) = (0u32..4, 10u8..12).generate(&mut rng);
        assert!(a < 4);
        assert!((10..12).contains(&b));
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = collection::vec(any::<bool>(), 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let exact = collection::vec(any::<u8>(), 7).generate(&mut rng);
        assert_eq!(exact.len(), 7);
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = TestRng::for_test("flat_map");
        let s = (2u32..10).prop_flat_map(|n| (0..n).prop_map(move |x| (n, x)));
        for _ in 0..500 {
            let (n, x) = s.generate(&mut rng);
            assert!(x < n);
        }
    }

    #[test]
    fn class_pattern_generates_within_alphabet() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = "[ -~\n]{0,16}".generate(&mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let only_a = "[a]{3,3}".generate(&mut rng);
        assert_eq!(only_a, "aaa");
    }

    #[test]
    fn pattern_parser_rejects_garbage() {
        assert!(parse_class_pattern("abc").is_none());
        assert!(parse_class_pattern("[]{1,2}").is_none());
        assert!(parse_class_pattern("[a]{5,2}").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_binds(x in 0u32..100, v in collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
