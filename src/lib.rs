//! # gorder — cache-friendly graph reordering
//!
//! A from-scratch Rust reproduction of **“Speedup Graph Processing by Graph
//! Ordering”** (Hao Wei, Jeffrey Xu Yu, Can Lu, Xuemin Lin — SIGMOD 2016),
//! guided by the ReScience replication by Lécuyer, Danisch and Tabourier
//! (2021).
//!
//! Graph algorithms spend a large share of their time waiting on cache
//! misses. **Gorder** renames the nodes of a graph so that nodes accessed
//! together receive nearby ids — and therefore share cache lines — which
//! speeds up *any* unmodified graph algorithm by 10–50 %.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — CSR graph substrate, permutations, I/O, generators,
//!   dataset recipes ([`gorder_graph`]).
//! * [`core`] — the Gorder algorithm itself: priority scores, unit heap,
//!   windowed greedy, and ordering quality metrics ([`gorder_core`]).
//! * [`orders`] — the nine baseline orderings the paper compares against
//!   ([`gorder_orders`]).
//! * [`algos`] — the nine benchmark graph algorithms ([`gorder_algos`]).
//! * [`cachesim`] — a set-associative cache-hierarchy simulator with
//!   per-algorithm access replayers, standing in for hardware performance
//!   counters ([`gorder_cachesim`]).
//!
//! ## Quickstart
//!
//! ```
//! use gorder::prelude::*;
//!
//! // A synthetic social graph (stand-in for the paper's datasets).
//! let graph = gorder::graph::datasets::epinion_like().build(0.05);
//!
//! // Compute the Gorder permutation (window w = 5, the paper's default)…
//! let ordering = GorderBuilder::new().window(5).build();
//! let perm = ordering.compute(&graph);
//!
//! // …and materialise the reordered graph.
//! let reordered = graph.relabel(&perm);
//! assert_eq!(reordered.m(), graph.m());
//!
//! // The reordered graph scores higher on the paper's locality objective
//! // F(π) than the original labelling does.
//! let w = 5;
//! let before = gorder::core::score::f_score(&graph, w);
//! let after = gorder::core::score::f_score(&reordered, w);
//! assert!(after > before);
//! ```

pub use gorder_algos as algos;
pub use gorder_cachesim as cachesim;
pub use gorder_core as core;
pub use gorder_graph as graph;
pub use gorder_orders as orders;

/// One-line imports for the common workflow.
pub mod prelude {
    pub use gorder_algos::{GraphAlgorithm, RunCtx};
    pub use gorder_core::{Gorder, GorderBuilder};
    pub use gorder_graph::{Graph, GraphBuilder, Permutation};
    pub use gorder_orders::OrderingAlgorithm;
}
